#include "model/failure_model.h"

#include "util/logging.h"

namespace dynvote {

Result<std::unique_ptr<NetworkProcessModel>> NetworkProcessModel::Make(
    Simulator* sim, NetworkState* net, std::vector<SiteProfile> profiles,
    std::vector<RepeaterProfile> repeater_profiles, std::uint64_t seed) {
  if (sim == nullptr || net == nullptr) {
    return Status::InvalidArgument("simulator and network must not be null");
  }
  const Topology& topo = net->topology();
  if (static_cast<int>(profiles.size()) != topo.num_sites()) {
    return Status::InvalidArgument("need one SiteProfile per site");
  }
  if (static_cast<int>(repeater_profiles.size()) != topo.num_repeaters()) {
    return Status::InvalidArgument("need one RepeaterProfile per repeater");
  }
  for (const SiteProfile& p : profiles) {
    if (p.mttf_days <= 0.0) {
      return Status::InvalidArgument("site MTTF must be > 0");
    }
    if (p.hardware_fraction < 0.0 || p.hardware_fraction > 1.0) {
      return Status::InvalidArgument("hardware fraction outside [0, 1]");
    }
  }
  for (const RepeaterProfile& p : repeater_profiles) {
    if (p.mttf_days <= 0.0) {
      return Status::InvalidArgument("repeater MTTF must be > 0");
    }
  }

  auto model =
      std::unique_ptr<NetworkProcessModel>(new NetworkProcessModel(sim, net));
  Rng master(seed);
  model->sites_.resize(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    model->sites_[i].profile = std::move(profiles[i]);
    model->sites_[i].rng = master.Split();
  }
  model->repeaters_.resize(repeater_profiles.size());
  for (std::size_t i = 0; i < repeater_profiles.size(); ++i) {
    model->repeaters_[i].profile = std::move(repeater_profiles[i]);
    model->repeaters_[i].rng = master.Split();
  }
  return model;
}

NetworkProcessModel::NetworkProcessModel(Simulator* sim, NetworkState* net)
    : sim_(sim), net_(net) {}

void NetworkProcessModel::Start() {
  for (SiteId s = 0; s < static_cast<SiteId>(sites_.size()); ++s) {
    ScheduleFailure(s);
    const SiteProfile& p = sites_[s].profile;
    if (p.maintenance_interval_days > 0.0 && p.maintenance_hours > 0.0) {
      // Stagger the first window uniformly over one interval: operators do
      // not service every machine at the same instant, and synchronised
      // windows would manufacture simultaneous multi-site outages that the
      // paper's testbed model does not exhibit.
      double phase = sites_[s].rng.NextDouble() * p.maintenance_interval_days;
      sim_->ScheduleAt(Days(phase),
                       [this, s](SimTime) { OnMaintenanceStart(s); });
    }
  }
  for (RepeaterId r = 0; r < static_cast<RepeaterId>(repeaters_.size());
       ++r) {
    ScheduleRepeaterFailure(r);
  }
}

void NetworkProcessModel::ScheduleFailure(SiteId site) {
  SiteRuntime& rt = sites_[site];
  DYNVOTE_CHECK_MSG(rt.pending_failure == kInvalidEventId,
                    "site already has a pending failure");
  double ttf = rt.rng.NextExponential(rt.profile.mttf_days);
  rt.pending_failure =
      sim_->ScheduleIn(ttf, [this, site](SimTime) { OnSiteFailure(site); });
}

void NetworkProcessModel::OnSiteFailure(SiteId site) {
  SiteRuntime& rt = sites_[site];
  rt.pending_failure = kInvalidEventId;
  rt.failed = true;
  ++rt.failures;
  ++total_failures_;
  PublishSite(site);

  const SiteProfile& p = rt.profile;
  double repair_days;
  if (rt.rng.NextBernoulli(p.hardware_fraction)) {
    repair_days = Hours(p.hw_repair_const_hours);
    if (p.hw_repair_exp_hours > 0.0) {
      repair_days += Hours(rt.rng.NextExponential(p.hw_repair_exp_hours));
    }
  } else {
    repair_days = Minutes(p.restart_minutes);
  }
  sim_->ScheduleIn(repair_days, [this, site](SimTime) { OnSiteRepair(site); });
}

void NetworkProcessModel::OnSiteRepair(SiteId site) {
  SiteRuntime& rt = sites_[site];
  rt.failed = false;
  PublishSite(site);
  if (rt.EffectiveUp()) ScheduleFailure(site);
}

void NetworkProcessModel::OnMaintenanceStart(SiteId site) {
  SiteRuntime& rt = sites_[site];
  rt.in_maintenance = true;
  // The machine is powered down: stop the failure clock. Exponential
  // lifetimes are memoryless, so drawing a fresh one at maintenance end
  // is distributionally identical.
  if (rt.pending_failure != kInvalidEventId) {
    sim_->Cancel(rt.pending_failure);
    rt.pending_failure = kInvalidEventId;
  }
  PublishSite(site);
  sim_->ScheduleIn(Hours(rt.profile.maintenance_hours),
                   [this, site](SimTime) { OnMaintenanceEnd(site); });
}

void NetworkProcessModel::OnMaintenanceEnd(SiteId site) {
  SiteRuntime& rt = sites_[site];
  rt.in_maintenance = false;
  PublishSite(site);
  if (rt.EffectiveUp()) ScheduleFailure(site);
  // Maintenance follows a fixed calendar: next window one interval after
  // this one began.
  sim_->ScheduleIn(Days(rt.profile.maintenance_interval_days) -
                       Hours(rt.profile.maintenance_hours),
                   [this, site](SimTime) { OnMaintenanceStart(site); });
}

void NetworkProcessModel::ScheduleRepeaterFailure(RepeaterId repeater) {
  RepeaterRuntime& rt = repeaters_[repeater];
  double ttf = rt.rng.NextExponential(rt.profile.mttf_days);
  sim_->ScheduleIn(ttf,
                   [this, repeater](SimTime) { OnRepeaterFailure(repeater); });
}

void NetworkProcessModel::OnRepeaterFailure(RepeaterId repeater) {
  RepeaterRuntime& rt = repeaters_[repeater];
  rt.failed = true;
  ++rt.failures;
  net_->SetRepeaterUp(repeater, false);
  Notify();

  double repair_days = Hours(rt.profile.repair_const_hours);
  if (rt.profile.repair_exp_hours > 0.0) {
    repair_days += Hours(rt.rng.NextExponential(rt.profile.repair_exp_hours));
  }
  sim_->ScheduleIn(repair_days,
                   [this, repeater](SimTime) { OnRepeaterRepair(repeater); });
}

void NetworkProcessModel::OnRepeaterRepair(RepeaterId repeater) {
  RepeaterRuntime& rt = repeaters_[repeater];
  rt.failed = false;
  net_->SetRepeaterUp(repeater, true);
  Notify();
  ScheduleRepeaterFailure(repeater);
}

void NetworkProcessModel::PublishSite(SiteId site) {
  net_->SetSiteUp(site, sites_[site].EffectiveUp());
  Notify();
}

void NetworkProcessModel::Notify() {
  if (on_change_) on_change_();
}

}  // namespace dynvote
