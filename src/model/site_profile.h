// The paper's evaluation environment: Table 1's per-site failure and
// repair characteristics, the Figure 8 network (a main carrier-sense
// segment with five sites, two of which gateway to smaller segments), the
// eight copy placements A-H, and the published Table 2 / Table 3 numbers
// for side-by-side comparison in the benches.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/time.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {

/// Failure/repair behaviour of one site (one row of Table 1).
struct SiteProfile {
  std::string name;
  /// Mean time to fail, days (exponentially distributed).
  double mttf_days = 0.0;
  /// Fraction of failures that are hardware failures.
  double hardware_fraction = 0.0;
  /// Software failures need only a restart of this length (minutes).
  double restart_minutes = 0.0;
  /// Hardware repair: constant minimum service time (hours) ...
  double hw_repair_const_hours = 0.0;
  /// ... plus an exponentially distributed repair process (mean, hours).
  double hw_repair_exp_hours = 0.0;
  /// Preventive maintenance: down `maintenance_hours` every
  /// `maintenance_interval_days`; 0 interval disables it.
  double maintenance_interval_days = 0.0;
  double maintenance_hours = 0.0;

  /// Mean repair time over the hardware/software mixture, in days.
  double MeanRepairDays() const;
};

/// Failure behaviour of a standalone repeater (not used by the paper's
/// own testbed, which only has gateway hosts, but needed for the Section 3
/// example topology and the topology ablation).
struct RepeaterProfile {
  std::string name;
  double mttf_days = 0.0;
  double repair_const_hours = 0.0;
  double repair_exp_hours = 0.0;
};

/// The paper's eight-site, three-segment network plus Table 1 profiles.
///
/// Site ids are zero-based: id 0 = paper site 1 (csvax), ... id 7 = paper
/// site 8 (mangle). Ids 0-4 (paper sites 1-5) sit on the main segment;
/// id 3 (wizard) gateways to the segment holding id 5 (gremlin); id 4
/// (amos) gateways to the segment holding ids 6 and 7 (rip, mangle).
/// Zero-based ids preserve the paper's tie-break order: lower id = higher
/// lexicographic rank, so paper site 1 ranks highest.
struct PaperNetwork {
  std::shared_ptr<const Topology> topology;
  std::vector<SiteProfile> profiles;  // indexed by SiteId
};

/// Builds the paper's network and Table 1 profiles.
Result<PaperNetwork> MakePaperNetwork();

/// One of the paper's copy placements (Section 4).
struct PaperConfiguration {
  char label = '?';
  /// Zero-based site ids holding copies.
  SiteSet placement;
  /// The paper's own description, e.g. "1, 2, 4".
  std::string description;
};

/// The eight configurations A-H of Tables 2 and 3.
const std::vector<PaperConfiguration>& PaperConfigurations();

/// Published unavailability (Table 2) for `config` in 'A'..'H' and
/// `policy` in {MCV, DV, LDV, ODV, TDV, OTDV}. Returns -1 if unknown.
double PaperTable2Value(char config, const std::string& policy);

/// Published mean duration of unavailable periods in days (Table 3).
/// Returns -1 for the table's "-" entries (never unavailable) and for
/// unknown keys.
double PaperTable3Value(char config, const std::string& policy);

}  // namespace dynvote
