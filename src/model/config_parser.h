// A small text format describing a network and its failure
// characteristics, so tools can simulate custom environments without
// recompiling. Grammar (one declaration per line, '#' comments):
//
//   segment <name>
//   site <name> <segment> [key=value ...]
//   gateway <site-name> <segment>          # site also bridges to segment
//   repeater <name> <segment> <segment> [key=value ...]
//   experiment [replications=R] [jobs=M]   # replication defaults
//
// Site keys (defaults in parentheses, units as in Table 1):
//   mttf=DAYS (365)       mean time to fail, exponential
//   hw=FRACTION (0.5)     fraction of failures needing hardware repair
//   restart=MINUTES (15)  software restart time
//   repair-const=HOURS (0), repair-exp=HOURS (2)   hardware repair
//   maint-interval=DAYS (0 = none), maint-hours=HOURS (0)
//
// Repeater keys: mttf=DAYS (365), repair-const=HOURS (0),
// repair-exp=HOURS (2).
//
// Experiment keys (integers): replications=R (1, >= 1) independent
// replications to run; jobs=M (1, >= 0, 0 = all cores) worker threads.
// Tools may override both from the command line; jobs never affects
// results, only wall-clock time.
//
// Example — the paper's own network is shipped as
// examples/networks/paper.net and parses to exactly MakePaperNetwork().

#pragma once

#include <string>
#include <vector>

#include "model/site_profile.h"
#include "net/topology.h"
#include "util/result.h"

namespace dynvote {

/// A parsed network description.
struct NetworkConfig {
  std::shared_ptr<const Topology> topology;
  std::vector<SiteProfile> profiles;            // one per site
  std::vector<RepeaterProfile> repeater_profiles;  // one per repeater
  /// Replication defaults from the `experiment` declaration (see
  /// model/replicated_experiment.h for the semantics).
  int replications = 1;
  int jobs = 1;
};

/// Parses the network description `text`. Errors carry the line number.
Result<NetworkConfig> ParseNetworkConfig(const std::string& text);

/// Reads and parses a description file.
Result<NetworkConfig> LoadNetworkConfig(const std::string& path);

/// Renders a config back to the text format (round-trips through
/// ParseNetworkConfig up to formatting).
std::string NetworkConfigToString(const NetworkConfig& config);

}  // namespace dynvote
