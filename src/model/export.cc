#include "model/export.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace dynvote {

namespace {

void AppendFields(std::ostringstream& os, const LabeledResult& row,
                  const char* sep, bool quote_strings) {
  auto str = [&](const std::string& s) {
    return quote_strings ? "\"" + s + "\"" : s;
  };
  os << str(row.label) << sep << str(row.result.name) << sep
     << std::setprecision(9) << row.result.unavailability << sep
     << row.result.stats.ci95_halfwidth << sep
     << row.result.mean_unavailable_duration << sep
     << row.result.num_unavailable_periods << sep
     << row.result.accesses_attempted << sep
     << row.result.accesses_granted << sep << row.result.messages.Total()
     << sep << row.result.messages.ControlTotal() << sep
     << row.result.messages.count(MessageKind::kFileCopy) << sep
     << row.result.dual_majority_instants << sep
     << row.result.measured_time;
}

}  // namespace

std::string ResultsToCsv(const std::vector<LabeledResult>& results) {
  std::ostringstream os;
  os << "label,policy,unavailability,ci95,mean_outage_days,num_outages,"
        "accesses_attempted,accesses_granted,messages_total,"
        "messages_control,file_copies,dual_majorities,measured_days\n";
  for (const LabeledResult& row : results) {
    AppendFields(os, row, ",", /*quote_strings=*/false);
    os << "\n";
  }
  return os.str();
}

std::string ResultsToJson(const std::vector<LabeledResult>& results) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LabeledResult& row = results[i];
    os << "  {\"label\": \"" << row.label << "\", \"policy\": \""
       << row.result.name << "\", \"unavailability\": "
       << std::setprecision(9) << row.result.unavailability
       << ", \"ci95\": " << row.result.stats.ci95_halfwidth
       << ", \"mean_outage_days\": "
       << row.result.mean_unavailable_duration
       << ", \"num_outages\": " << row.result.num_unavailable_periods
       << ", \"accesses_attempted\": " << row.result.accesses_attempted
       << ", \"accesses_granted\": " << row.result.accesses_granted
       << ", \"messages_total\": " << row.result.messages.Total()
       << ", \"messages_control\": " << row.result.messages.ControlTotal()
       << ", \"file_copies\": "
       << row.result.messages.count(MessageKind::kFileCopy)
       << ", \"dual_majorities\": " << row.result.dual_majority_instants
       << ", \"measured_days\": " << row.result.measured_time << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for write");
  }
  out << contents;
  out.flush();
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace dynvote
