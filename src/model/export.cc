#include "model/export.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace dynvote {

namespace {

void AppendFields(std::ostringstream& os, const LabeledResult& row,
                  const char* sep, bool quote_strings) {
  auto str = [&](const std::string& s) {
    return quote_strings ? "\"" + s + "\"" : s;
  };
  os << str(row.label) << sep << str(row.result.name) << sep
     << std::setprecision(9) << row.result.unavailability << sep
     << row.result.stats.ci95_halfwidth << sep
     << row.result.mean_unavailable_duration << sep
     << row.result.num_unavailable_periods << sep
     << row.result.accesses_attempted << sep
     << row.result.accesses_granted << sep << row.result.messages.Total()
     << sep << row.result.messages.ControlTotal() << sep
     << row.result.messages.count(MessageKind::kFileCopy) << sep
     << row.result.dual_majority_instants << sep
     << row.result.measured_time;
}

}  // namespace

std::string ResultsToCsv(const std::vector<LabeledResult>& results) {
  std::ostringstream os;
  os << "label,policy,unavailability,ci95,mean_outage_days,num_outages,"
        "accesses_attempted,accesses_granted,messages_total,"
        "messages_control,file_copies,dual_majorities,measured_days\n";
  for (const LabeledResult& row : results) {
    AppendFields(os, row, ",", /*quote_strings=*/false);
    os << "\n";
  }
  return os.str();
}

std::string ResultsToJson(const std::vector<LabeledResult>& results) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LabeledResult& row = results[i];
    os << "  {\"label\": \"" << row.label << "\", \"policy\": \""
       << row.result.name << "\", \"unavailability\": "
       << std::setprecision(9) << row.result.unavailability
       << ", \"ci95\": " << row.result.stats.ci95_halfwidth
       << ", \"mean_outage_days\": "
       << row.result.mean_unavailable_duration
       << ", \"num_outages\": " << row.result.num_unavailable_periods
       << ", \"accesses_attempted\": " << row.result.accesses_attempted
       << ", \"accesses_granted\": " << row.result.accesses_granted
       << ", \"messages_total\": " << row.result.messages.Total()
       << ", \"messages_control\": " << row.result.messages.ControlTotal()
       << ", \"file_copies\": "
       << row.result.messages.count(MessageKind::kFileCopy)
       << ", \"dual_majorities\": " << row.result.dual_majority_instants
       << ", \"measured_days\": " << row.result.measured_time << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

namespace {

void AppendSummary(std::ostringstream& os, const char* key,
                   const ReplicationSummary& s) {
  os << "\"" << key << "\": {\"mean\": " << s.mean
     << ", \"stddev\": " << s.stddev
     << ", \"ci95\": " << s.ci95_halfwidth << ", \"min\": " << s.min
     << ", \"max\": " << s.max << ", \"samples\": " << s.num_samples
     << ", \"censored\": " << s.num_censored << "}";
}

}  // namespace

std::string ReplicatedResultsToJson(const std::string& label,
                                    const ReplicatedResults& results) {
  std::ostringstream os;
  os << std::setprecision(17);  // round-trip exact: this is the byte-
                                // identical determinism surface
  os << "{\n  \"label\": \"" << label << "\",\n  \"seeds\": [";
  for (std::size_t r = 0; r < results.seeds.size(); ++r) {
    os << (r > 0 ? ", " : "") << results.seeds[r];
  }
  os << "],\n  \"replications\": [\n";
  for (std::size_t r = 0; r < results.per_replication.size(); ++r) {
    const std::vector<PolicyResult>& rows = results.per_replication[r];
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const PolicyResult& row = rows[p];
      os << "    {\"replication\": " << r << ", \"seed\": "
         << results.seeds[r] << ", \"policy\": \"" << row.name
         << "\", \"unavailability\": " << row.unavailability
         << ", \"ci95\": " << row.stats.ci95_halfwidth
         << ", \"mean_outage_days\": " << row.mean_unavailable_duration
         << ", \"num_outages\": " << row.num_unavailable_periods
         << ", \"time_to_first_outage\": " << row.time_to_first_outage
         << ", \"accesses_attempted\": " << row.accesses_attempted
         << ", \"accesses_granted\": " << row.accesses_granted
         << ", \"messages_total\": " << row.messages.Total()
         << ", \"messages_control\": " << row.messages.ControlTotal()
         << ", \"file_copies\": "
         << row.messages.count(MessageKind::kFileCopy)
         << ", \"dual_majorities\": " << row.dual_majority_instants
         << ", \"measured_days\": " << row.measured_time << "}";
      bool last = r + 1 == results.per_replication.size() &&
                  p + 1 == rows.size();
      os << (last ? "" : ",") << "\n";
    }
  }
  os << "  ],\n  \"aggregate\": [\n";
  for (std::size_t p = 0; p < results.aggregate.size(); ++p) {
    const AggregatePolicyResult& agg = results.aggregate[p];
    os << "    {\"policy\": \"" << agg.name
       << "\", \"replications\": " << agg.replications << ", ";
    AppendSummary(os, "unavailability", agg.unavailability);
    os << ", ";
    AppendSummary(os, "mean_outage_days", agg.mean_outage_duration);
    os << ", ";
    AppendSummary(os, "time_to_first_outage", agg.time_to_first_outage);
    os << ", \"replications_with_outages\": "
       << agg.replications_with_outages
       << ", \"num_outages\": " << agg.num_unavailable_periods
       << ", \"accesses_attempted\": " << agg.accesses_attempted
       << ", \"accesses_granted\": " << agg.accesses_granted
       << ", \"messages_total\": " << agg.messages.Total()
       << ", \"messages_control\": " << agg.messages.ControlTotal()
       << ", \"file_copies\": "
       << agg.messages.count(MessageKind::kFileCopy)
       << ", \"dual_majorities\": " << agg.dual_majority_instants
       << ", \"measured_days\": " << agg.measured_days << "}"
       << (p + 1 < results.aggregate.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for write");
  }
  out << contents;
  out.flush();
  if (!out) return Status::Internal("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace dynvote
