// The simulation driver: wires a topology, Table 1 style failure
// processes, an access workload and a set of consistency protocols into
// one discrete-event run, observing every protocol over the *same* sample
// path (common random numbers, which sharpens cross-policy comparisons the
// way the paper's single testbed model does).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "model/access_model.h"
#include "model/open_loop.h"
#include "obs/context.h"
#include "model/site_profile.h"
#include "net/topology.h"
#include "repl/message_bus.h"
#include "sim/time.h"
#include "stats/batch_means.h"
#include "util/result.h"

namespace dynvote {

/// Run-length and workload parameters of one experiment.
struct ExperimentOptions {
  /// Warm-up discarded before measurement (the paper uses 360 days).
  SimTime warmup = Days(360);
  /// Number of batches for batch-means confidence intervals.
  int num_batches = 30;
  /// Length of each batch; total measured time = num_batches * this.
  SimTime batch_length = Years(20);
  /// The access workload (one access per day in the paper).
  AccessOptions access;
  /// The serving model (docs/serving.md). When enabled, the closed-loop
  /// access workload above is replaced by open-loop Poisson arrivals per
  /// replica with a queueing stage, and serving_* metrics are emitted.
  ServingOptions serving;
  /// Master seed; runs with equal seeds are bit-identical.
  std::uint64_t seed = 20260704;
  /// Abort (CHECK) if two disjoint groups are ever simultaneously granted
  /// by a partition-safe protocol.
  bool check_mutual_exclusion = true;
  /// Memoize per-protocol grant decisions keyed by (component mask,
  /// access type) and invalidated on store-epoch movement — see
  /// ConsistencyProtocol::CachedWouldGrant. Never changes results, only
  /// wall-clock time; the false setting is the --no-quorum-cache escape
  /// hatch used by the cache-identity regression tests.
  bool quorum_cache = true;
};

/// Per-protocol outcome of one experiment.
struct PolicyResult {
  std::string name;
  /// Fraction of measured time the file was inaccessible (Table 2).
  double unavailability = 0.0;
  /// Batch-means summary of the unavailability (95 % CI).
  BatchStats stats;
  /// Mean length of an unavailable period, days (Table 3); 0 with
  /// num_unavailable_periods == 0 means "never unavailable" and is
  /// printed as "-".
  double mean_unavailable_duration = 0.0;
  int num_unavailable_periods = 0;
  /// Access outcomes.
  std::uint64_t accesses_attempted = 0;
  std::uint64_t accesses_granted = 0;
  /// Message traffic the protocol generated over the whole run
  /// (including warm-up).
  MessageCounter messages;
  /// Measured time in days.
  double measured_time = 0.0;
  /// Sampled instants at which two disjoint groups were simultaneously
  /// granted. Always 0 for partition-safe protocols (enforced); nonzero
  /// values quantify the topological variants' documented mutual-exclusion
  /// hazard.
  std::uint64_t dual_majority_instants = 0;
  /// Days from the start of measurement until the file first became
  /// unavailable; -1 if it never did (right-censored at the horizon).
  /// The reliability metric behind the paper's "continuously available
  /// for more than three hundred years" remark.
  double time_to_first_outage = -1.0;
};

/// Everything an experiment needs besides the protocols themselves.
struct ExperimentSpec {
  std::shared_ptr<const Topology> topology;
  std::vector<SiteProfile> profiles;
  std::vector<RepeaterProfile> repeater_profiles;  // empty if none
  ExperimentOptions options;
  /// Observability context attached to the simulator, the network state,
  /// every protocol and every tracker for the duration of the run. Not
  /// owned; null (the default) disables tracing and metrics entirely.
  /// Tracing never changes statistical outputs — only what is recorded.
  ObsContext* obs = nullptr;
};

/// Runs `protocols` through one simulated sample path and reports a
/// result per protocol (in input order).
Result<std::vector<PolicyResult>> RunAvailabilityExperiment(
    const ExperimentSpec& spec,
    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols);

/// Convenience wrapper: builds the paper's network, places copies per
/// configuration `config_label` ('A'..'H') and runs the named policies
/// (registry names).
Result<std::vector<PolicyResult>> RunPaperExperiment(
    char config_label, const std::vector<std::string>& policies,
    const ExperimentOptions& options);

}  // namespace dynvote
