#include "model/replicated_experiment.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/registry.h"
#include "model/batched_experiment.h"
#include "model/failure_model.h"
#include "obs/async_writer.h"
#include "obs/binary_trace.h"
#include "obs/context.h"
#include "obs/trace_sink.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dynvote {

namespace {

/// Outcome slot for one replication, written by exactly one task and read
/// only after ThreadPool::Wait() — the pool's queue mutex orders the
/// writes before the coordinator's reads.
struct ReplicationSlot {
  Status status;  // OK iff rows is meaningful
  std::vector<PolicyResult> rows;
  std::string trace;     // JSONL body when collect_traces
  MetricsShard metrics;  // per-replication shard when collect_metrics
};

/// Runs one replication of the experiment with the slot's derived seed.
/// A caller-supplied spec.obs is never shared across workers — when
/// collection is on, each replication gets a private context (sink into
/// the slot's buffer, metrics into the slot's shard) and spec.obs is
/// replaced; when off, spec.obs is cleared.
ReplicationSlot RunOneReplication(const ExperimentSpec& base,
                                  const ProtocolSetFactory& factory,
                                  std::uint64_t seed, int replication,
                                  const ReplicationOptions& options) {
  ReplicationSlot slot;
  auto protocols = factory();
  if (!protocols.ok()) {
    slot.status = protocols.status();
    return slot;
  }
  ExperimentSpec spec = base;  // private copy; only options.seed differs
  spec.options.seed = seed;

  // Both sinks write to the worker-private buffer; which one the context
  // points at is the only format difference, so binary collection keeps
  // the same confinement (and thus the same determinism contract).
  std::ostringstream trace_out;
  JsonlTraceSink jsonl_sink(&trace_out);
  StreamPageSink trace_pages(&trace_out);
  BinaryTraceSink binary_sink(&trace_pages);
  TraceSink* trace_sink = options.trace_format == TraceFormat::kBinary
                              ? static_cast<TraceSink*>(&binary_sink)
                              : &jsonl_sink;
  ObsContext ctx;
  ctx.replication = replication;
  if (options.collect_traces) ctx.sink = trace_sink;
  if (options.collect_metrics) ctx.metrics = &slot.metrics;
  spec.obs = options.collect_traces || options.collect_metrics ? &ctx
                                                               : nullptr;

  auto rows = RunAvailabilityExperiment(spec, protocols.MoveValue());
  if (!rows.ok()) {
    slot.status = rows.status();
    return slot;
  }
  slot.rows = rows.MoveValue();
  if (options.collect_traces) {
    trace_sink->Flush();  // binary: hand off the final partial page
    if (!trace_sink->ok()) {
      slot.status = Status::Internal("trace collection failed: " +
                                     trace_sink->error());
      return slot;
    }
    slot.trace = trace_out.str();
  }
  return slot;
}

}  // namespace

std::uint64_t ReplicationSeed(std::uint64_t master_seed, int replication) {
  DYNVOTE_CHECK_MSG(replication >= 0, "negative replication index");
  if (replication == 0) return master_seed;
  SplitMix64 mix(master_seed);
  std::uint64_t seed = master_seed;
  for (int r = 0; r < replication; ++r) seed = mix.Next();
  return seed;
}

Result<ReplicatedResults> RunReplicatedExperiment(
    const ExperimentSpec& spec, const ProtocolSetFactory& factory,
    const ReplicationOptions& options,
    const BatchedProtocolSpec* batched) {
  if (options.replications < 1) {
    return Status::InvalidArgument("replications must be >= 1");
  }
  if (options.jobs < 0) {
    return Status::InvalidArgument("jobs must be >= 0 (0 = all cores)");
  }
  if (options.objects < 1) {
    return Status::InvalidArgument("objects must be >= 1");
  }
  if (!factory) {
    return Status::InvalidArgument("replicated experiment needs a factory");
  }

  const int reps = options.replications;
  int jobs = options.jobs == 0 ? ThreadPool::DefaultThreads() : options.jobs;
  jobs = std::min(jobs, reps);

  ReplicatedResults out;
  out.seeds.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    out.seeds.push_back(ReplicationSeed(spec.options.seed, r));
  }

  // The batched engine handles only plain statistical runs: tracing,
  // metrics and the serving model need the per-replication instrumented
  // path, and unsupported policies need real protocol objects. Grouping replications changes
  // nothing observable — each group's rows are bit-identical to solo
  // runs with the same seeds — so the gate is purely a dispatch choice.
  const bool use_batched = batched != nullptr && options.objects > 1 &&
                           !options.collect_traces &&
                           !options.collect_metrics && spec.obs == nullptr &&
                           !spec.options.serving.enabled &&
                           BatchedEngineSupports(batched->policies);

  std::vector<ReplicationSlot> slots(static_cast<std::size_t>(reps));
  if (use_batched) {
    const int group_size = options.objects;
    const int num_groups = (reps + group_size - 1) / group_size;
    // One task per group; each group writes only its own replications'
    // slots, preserving the fixed-slot determinism contract.
    auto run_group = [&spec, batched, &out, &slots, reps, group_size](int g) {
      const int lo = g * group_size;
      const int hi = std::min(reps, lo + group_size);
      std::vector<std::uint64_t> seeds(out.seeds.begin() + lo,
                                       out.seeds.begin() + hi);
      auto rows = RunBatchedAvailabilityExperiment(spec, *batched, seeds);
      if (!rows.ok()) {
        for (int r = lo; r < hi; ++r) slots[r].status = rows.status();
        return;
      }
      std::vector<std::vector<PolicyResult>> group_rows = rows.MoveValue();
      for (int r = lo; r < hi; ++r) {
        slots[r].rows = std::move(group_rows[static_cast<std::size_t>(r - lo)]);
      }
    };
    const int group_jobs = std::min(jobs, num_groups);
    if (group_jobs <= 1) {
      for (int g = 0; g < num_groups; ++g) run_group(g);
    } else {
      ThreadPool pool(group_jobs);
      for (int g = 0; g < num_groups; ++g) {
        pool.Submit([&run_group, g] { run_group(g); });
      }
      pool.Wait();
    }
  } else if (jobs <= 1) {
    for (int r = 0; r < reps; ++r) {
      slots[r] = RunOneReplication(spec, factory, out.seeds[r], r, options);
    }
  } else {
    ThreadPool pool(jobs);
    for (int r = 0; r < reps; ++r) {
      ReplicationSlot* slot = &slots[r];
      std::uint64_t seed = out.seeds[r];
      pool.Submit([&spec, &factory, &options, slot, seed, r] {
        *slot = RunOneReplication(spec, factory, seed, r, options);
      });
    }
    pool.Wait();
  }

  // Errors surface lowest-slot-first so the reported failure does not
  // depend on completion order.
  for (const ReplicationSlot& slot : slots) {
    if (!slot.status.ok()) return slot.status;
  }

  const std::size_t num_policies = slots.front().rows.size();
  for (const ReplicationSlot& slot : slots) {
    if (slot.rows.size() != num_policies) {
      return Status::Internal("replications produced different policy sets");
    }
  }

  out.per_replication.reserve(slots.size());
  if (options.collect_traces) out.traces.reserve(slots.size());
  for (ReplicationSlot& slot : slots) {
    out.per_replication.push_back(std::move(slot.rows));
    // Traces and metrics fold in slot (replication) order, keeping both
    // outputs bit-identical for any job count.
    if (options.collect_traces) out.traces.push_back(std::move(slot.trace));
    if (options.collect_metrics) out.metrics.Merge(slot.metrics);
  }

  out.aggregate.reserve(num_policies);
  for (std::size_t p = 0; p < num_policies; ++p) {
    AggregatePolicyResult agg;
    agg.name = out.per_replication.front()[p].name;
    agg.replications = reps;
    ReplicationStats unavailability;
    ReplicationStats outage_duration;
    ReplicationStats first_outage;
    for (const std::vector<PolicyResult>& rows : out.per_replication) {
      const PolicyResult& r = rows[p];
      if (r.name != agg.name) {
        return Status::Internal("replications produced different policy sets");
      }
      unavailability.Add(r.unavailability);
      if (r.num_unavailable_periods > 0) {
        outage_duration.Add(r.mean_unavailable_duration);
        ++agg.replications_with_outages;
      }
      if (r.time_to_first_outage >= 0.0) {
        first_outage.Add(r.time_to_first_outage);
      } else {
        first_outage.AddCensored();
      }
      agg.accesses_attempted += r.accesses_attempted;
      agg.accesses_granted += r.accesses_granted;
      agg.num_unavailable_periods += r.num_unavailable_periods;
      agg.dual_majority_instants += r.dual_majority_instants;
      for (int k = 0; k < kNumMessageKinds; ++k) {
        MessageKind kind = static_cast<MessageKind>(k);
        agg.messages.Add(kind, r.messages.count(kind));
      }
      agg.measured_days += r.measured_time;
    }
    agg.unavailability = unavailability.Summary();
    agg.mean_outage_duration = outage_duration.Summary();
    agg.time_to_first_outage = first_outage.Summary();
    out.aggregate.push_back(std::move(agg));
  }
  return out;
}

Result<ReplicatedResults> RunReplicatedPaperExperiment(
    char config_label, const std::vector<std::string>& policies,
    const ExperimentOptions& options,
    const ReplicationOptions& replication) {
  auto network = MakePaperNetwork();
  if (!network.ok()) return network.status();

  const PaperConfiguration* config = nullptr;
  for (const PaperConfiguration& c : PaperConfigurations()) {
    if (c.label == config_label) config = &c;
  }
  if (config == nullptr) {
    return Status::InvalidArgument(std::string("unknown configuration '") +
                                   config_label + "'");
  }

  // The factory reads only immutable data (topology, placement, names),
  // so concurrent invocation from worker threads is safe.
  std::shared_ptr<const Topology> topology = network->topology;
  const SiteSet placement = config->placement;
  ProtocolSetFactory factory =
      [topology, placement,
       &policies]() -> Result<std::vector<std::unique_ptr<ConsistencyProtocol>>> {
    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
    protocols.reserve(policies.size());
    for (const std::string& name : policies) {
      auto p = MakeProtocolByName(name, topology, placement);
      if (!p.ok()) return p.status();
      protocols.push_back(p.MoveValue());
    }
    return protocols;
  };

  ExperimentSpec spec;
  spec.topology = network->topology;
  spec.profiles = network->profiles;
  spec.options = options;
  // Offer the batched engine the same protocol set the factory builds;
  // RunReplicatedExperiment falls back to per-replication protocol
  // objects whenever the batched gate does not apply.
  BatchedProtocolSpec batched{policies, placement};
  return RunReplicatedExperiment(spec, factory, replication, &batched);
}

std::vector<PolicyResult> MeanPolicyResults(const ReplicatedResults& results) {
  if (results.per_replication.size() == 1) {
    return results.per_replication.front();
  }
  std::vector<PolicyResult> rows;
  rows.reserve(results.aggregate.size());
  for (const AggregatePolicyResult& agg : results.aggregate) {
    PolicyResult r;
    r.name = agg.name;
    r.unavailability = agg.unavailability.mean;
    // Re-express the cross-replication interval in the BatchStats shape
    // the table printers already know how to render.
    r.stats.num_batches = agg.unavailability.num_samples;
    r.stats.mean = agg.unavailability.mean;
    r.stats.stddev = agg.unavailability.stddev;
    r.stats.ci95_halfwidth = agg.unavailability.ci95_halfwidth;
    r.mean_unavailable_duration = agg.mean_outage_duration.mean;
    r.num_unavailable_periods = agg.num_unavailable_periods;
    r.accesses_attempted = agg.accesses_attempted;
    r.accesses_granted = agg.accesses_granted;
    r.messages = agg.messages;
    r.measured_time = agg.measured_days;
    r.dual_majority_instants = agg.dual_majority_instants;
    r.time_to_first_outage = agg.time_to_first_outage.num_samples > 0
                                 ? agg.time_to_first_outage.mean
                                 : -1.0;
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace dynvote
