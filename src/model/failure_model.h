// Stochastic failure, repair and preventive-maintenance processes driving
// a NetworkState through a Simulator, parameterised by Table 1 style
// SiteProfiles. Site failures are exponential; repair is a
// hardware/software mixture (constant restart vs constant-plus-exponential
// service); maintenance follows a fixed calendar.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "model/site_profile.h"
#include "net/network_state.h"
#include "sim/simulator.h"
#include "util/result.h"
#include "util/rng.h"

namespace dynvote {

/// Drives site and repeater up/down transitions.
///
/// A site is up iff it is neither failed nor in maintenance. While a site
/// is down its failure clock is stopped (a powered-off machine cannot
/// fail); exponential lifetimes make the restart of the clock memoryless.
class NetworkProcessModel {
 public:
  /// Invoked after every change of any site's or repeater's up state, with
  /// the NetworkState already updated.
  using ChangeCallback = std::function<void()>;

  /// Creates the model. `profiles` must have one entry per topology site.
  /// `repeater_profiles` must have one entry per topology repeater (none
  /// in the paper's own network). `sim` and `net` must outlive the model.
  static Result<std::unique_ptr<NetworkProcessModel>> Make(
      Simulator* sim, NetworkState* net, std::vector<SiteProfile> profiles,
      std::vector<RepeaterProfile> repeater_profiles, std::uint64_t seed);

  NetworkProcessModel(const NetworkProcessModel&) = delete;
  NetworkProcessModel& operator=(const NetworkProcessModel&) = delete;

  void set_on_change(ChangeCallback callback) {
    on_change_ = std::move(callback);
  }

  /// Schedules the initial failure and maintenance events. Call once.
  void Start();

  /// Total site failures generated so far.
  std::uint64_t total_failures() const { return total_failures_; }
  /// Failures of one site.
  std::uint64_t failures_of(SiteId site) const {
    return sites_[site].failures;
  }

 private:
  struct SiteRuntime {
    SiteProfile profile;
    Rng rng{0};
    bool failed = false;
    bool in_maintenance = false;
    EventId pending_failure = kInvalidEventId;
    std::uint64_t failures = 0;
    bool EffectiveUp() const { return !failed && !in_maintenance; }
  };
  struct RepeaterRuntime {
    RepeaterProfile profile;
    Rng rng{0};
    bool failed = false;
    std::uint64_t failures = 0;
  };

  NetworkProcessModel(Simulator* sim, NetworkState* net);

  void ScheduleFailure(SiteId site);
  void OnSiteFailure(SiteId site);
  void OnSiteRepair(SiteId site);
  void OnMaintenanceStart(SiteId site);
  void OnMaintenanceEnd(SiteId site);
  void ScheduleRepeaterFailure(RepeaterId repeater);
  void OnRepeaterFailure(RepeaterId repeater);
  void OnRepeaterRepair(RepeaterId repeater);

  /// Pushes a site's effective state into the NetworkState and notifies.
  void PublishSite(SiteId site);
  void Notify();

  Simulator* sim_;
  NetworkState* net_;
  std::vector<SiteRuntime> sites_;
  std::vector<RepeaterRuntime> repeaters_;
  ChangeCallback on_change_;
  std::uint64_t total_failures_ = 0;
};

}  // namespace dynvote
