#include "model/batched_experiment.h"

#include <bit>
#include <string>
#include <vector>

#include "core/quorum.h"
#include "net/network_state.h"
#include "repl/message_bus.h"
#include "repl/replica_store.h"
#include "sim/calendar_queue.h"
#include "stats/tracker.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dynvote {

namespace {

// ---------------------------------------------------------------------------
// Protocol plans
// ---------------------------------------------------------------------------

/// The engine's protocol bitmasks are 32 bits wide.
constexpr int kMaxBatchedProtocols = 32;

enum class BatchedKind { kMcv, kDynamic };

/// A protocol reduced to the handful of flags the batched fast paths
/// need — the same flags the registry bakes into the real protocol
/// objects (see core/registry.cc).
struct ProtocolPlan {
  std::string name;
  BatchedKind kind = BatchedKind::kDynamic;
  TieBreak tie_break = TieBreak::kLexicographic;
  bool topological = false;
  bool optimistic = false;

  /// Mirrors ConsistencyProtocol::partition_safe(): the topological
  /// variants knowingly risk dual majorities, everything else must
  /// never produce one.
  bool partition_safe() const {
    return kind == BatchedKind::kMcv || !topological;
  }
};

bool PlanFor(const std::string& name, ProtocolPlan* plan) {
  plan->name = name;
  if (name == "MCV") {
    plan->kind = BatchedKind::kMcv;
    return true;
  }
  plan->kind = BatchedKind::kDynamic;
  if (name == "DV") {
    plan->tie_break = TieBreak::kNone;
    return true;
  }
  if (name == "LDV") return true;
  if (name == "ODV") {
    plan->optimistic = true;
    return true;
  }
  if (name == "TDV") {
    plan->topological = true;
    return true;
  }
  if (name == "OTDV") {
    plan->topological = true;
    plan->optimistic = true;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Event payload packing
// ---------------------------------------------------------------------------

/// Payload layout: kind(3) | entity(8) | object(21) | generation(32).
enum class EventKind : std::uint64_t {
  kSiteFailure = 0,
  kSiteRepair = 1,
  kMaintenanceStart = 2,
  kMaintenanceEnd = 3,
  kRepeaterFailure = 4,
  kRepeaterRepair = 5,
  kAccess = 6,
};

constexpr std::uint64_t Pack(EventKind kind, int entity, std::size_t object,
                             std::uint32_t generation) {
  return static_cast<std::uint64_t>(kind) |
         (static_cast<std::uint64_t>(entity) << 3) |
         (static_cast<std::uint64_t>(object) << 11) |
         (static_cast<std::uint64_t>(generation) << 32);
}

constexpr EventKind KindOf(std::uint64_t payload) {
  return static_cast<EventKind>(payload & 0x7);
}
constexpr int EntityOf(std::uint64_t payload) {
  return static_cast<int>((payload >> 3) & 0xFF);
}
constexpr std::size_t ObjectOf(std::uint64_t payload) {
  return static_cast<std::size_t>((payload >> 11) & 0x1FFFFF);
}
constexpr std::uint32_t GenerationOf(std::uint64_t payload) {
  return static_cast<std::uint32_t>(payload >> 32);
}

constexpr std::size_t kMaxBatchedObjects = std::size_t{1} << 21;

// ---------------------------------------------------------------------------
// Struct-of-arrays state
// ---------------------------------------------------------------------------

/// Failure-process state of one (object, site), the SoA analogue of
/// NetworkProcessModel::SiteRuntime. The solo model cancels the pending
/// failure event at maintenance start; here cancellation is a generation
/// bump — a SiteFailure event whose generation no longer matches is
/// stale and dropped at dispatch.
struct SiteSlot {
  Rng rng{0};
  std::uint32_t failure_generation = 0;
  bool failed = false;
  bool in_maintenance = false;

  bool EffectiveUp() const { return !failed && !in_maintenance; }
};

/// Dynamic-voting state of one (object, protocol).
///
/// Steady state is "uniform": every copy holds the same (o, v, P)
/// ensemble, so the whole store collapses to three scalars and the
/// quorum test to popcount arithmetic. The real ReplicaStore is kept
/// alongside and re-materialized from the scalars the moment a commit
/// fails to cover the placement; from then on the exact
/// EvaluateDynamicQuorum path runs until a covering commit restores
/// uniformity. Decisions are identical in both modes — uniform mode is
/// the algebraic special case of the paper's rule when Q = S = R and
/// P_m is the full placement.
struct DvSlot {
  explicit DvSlot(ReplicaStore s) : store(std::move(s)) {}

  bool uniform = true;
  OpNumber u_op = 1;
  VersionNumber u_version = 1;
  SiteSet u_partition;          // == placement while uniform (invariant)
  ReplicaStore store;           // authoritative only while !uniform

  /// Monotonic count of decision-relevant state changes (commits that
  /// alter the store or the uniform partition set). Absolute op/version
  /// values never affect a quorum decision, so uniform-to-uniform
  /// commits deliberately do not bump it.
  std::uint64_t commit_stamp = 0;

  /// Divergent-mode analogue of the uniform invariant: after a commit
  /// with P = participants = all-copies(participants), every member of
  /// `local_set` carries identical (o, v, P = local_set) state. A later
  /// evaluation over exactly that group is then an unconditional grant
  /// with Q = S = R = P_m — the steady state of the majority side during
  /// a long partition — and reintegration over it is a no-op. Any commit
  /// rewrites these fields, so they can never go stale.
  bool local_valid = false;
  SiteSet local_set;
  OpNumber local_op = 0;
  VersionNumber local_version = 0;

  /// True when the authoritative (o, v) of local_set's members live in
  /// the scalars above and the store rows are stale: a repeat commit of
  /// the same locally uniform group changes nothing any evaluation can
  /// observe, so it only bumps the scalars. The rows are rewritten
  /// (EnsureMaterialized) before any code path reads the store again.
  bool local_dirty = false;
};

/// Flushes deferred scalar commits back into the store rows. Must run
/// before any store read (scan, state lookup, or a real Commit) while
/// local_dirty is set.
void EnsureMaterialized(DvSlot& slot) {
  if (!slot.local_dirty) return;
  for (SiteId s : slot.local_set) {
    ReplicaState* state = slot.store.mutable_state(s);
    state->op_number = slot.local_op;
    state->version = slot.local_version;
    state->partition_set = slot.local_set;
  }
  slot.local_dirty = false;
}

/// Availability/traffic accounting of one (object, protocol).
struct ObservedSlot {
  explicit ObservedSlot(AvailabilityTracker t) : tracker(std::move(t)) {}

  AvailabilityTracker tracker;
  MessageCounter counter;
  std::uint64_t attempted = 0;
  std::uint64_t granted = 0;
  std::uint64_t dual_majority_instants = 0;

  /// Shadow of the tracker's last status. An available-while-available
  /// update only rewrites the tracker's last-update time, which no
  /// statistic depends on, so those calls are skipped. Unavailable
  /// updates always go through: the tracker accumulates outage time
  /// span-by-span and merging spans would change the floating-point
  /// sums.
  bool last_available = true;
};

/// One slot of the per-object sample memo: grant decisions for a copies
/// mask, one validity/decision bit per protocol. The equivalent of the
/// solo CachedWouldGrant ring, shared by all protocols of the object.
struct GroupMemoSlot {
  std::uint64_t mask = 0;
  std::uint32_t valid = 0;
  std::uint32_t granted = 0;
};

constexpr int kGroupMemoSlots = 8;

/// Outcome of one quorum evaluation, either mode. `quorum` and `current`
/// double as handles to the extremal replica states: every member of Q
/// carries MaxOp(R) and every member of S carries MaxVersion(R), so a
/// caller reads those maxima with one state lookup instead of a store
/// scan.
struct EvalResult {
  bool granted = false;
  SiteSet reachable;  // R ∩ placement
  SiteSet quorum;     // Q: reachable copies with the maximal op number
  SiteSet current;    // S
  SiteSet prev;       // P_m
  OpNumber max_op = 0;          // MaxOp(R), undefined if R is empty
  VersionNumber max_version = 0;  // MaxVersion(R), undefined if R is empty
};

/// Per-(object, protocol) evaluation memo. A quorum decision is a pure
/// function of (replica state, reachable-copies mask), and between
/// commits the same (state, mask) pair is evaluated repeatedly — user
/// access, the availability sample and the instantaneous refresh all ask
/// the same question. Two entries cover the common partitioned case of
/// one group per side. Validity is (mask, commit_stamp) equality, so a
/// commit or a membership change is an automatic miss.
struct DvEvalMemo {
  struct Entry {
    std::uint64_t mask = 0;
    std::uint64_t stamp = ~std::uint64_t{0};  // never matches a live slot
    EvalResult result;
  };
  Entry entries[2];
  int cursor = 0;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

class BatchedEngine {
 public:
  BatchedEngine(const ExperimentSpec& spec, SiteSet placement,
                std::vector<ProtocolPlan> plans,
                const std::vector<std::uint64_t>& seeds)
      : spec_(spec),
        placement_(placement),
        plans_(std::move(plans)),
        seeds_(seeds),
        num_objects_(seeds.size()),
        num_protocols_(static_cast<int>(plans_.size())),
        start_(spec.options.warmup),
        horizon_(spec.options.warmup +
                 spec.options.batch_length * spec.options.num_batches) {}

  Result<std::vector<std::vector<PolicyResult>>> Run();

 private:
  // --- indexing ----------------------------------------------------------
  SiteSlot& site_slot(std::size_t obj, SiteId s) {
    return sites_[obj * static_cast<std::size_t>(num_sites_) +
                  static_cast<std::size_t>(s)];
  }
  ObservedSlot& observed(std::size_t obj, int p) {
    return observed_[obj * static_cast<std::size_t>(num_protocols_) +
                     static_cast<std::size_t>(p)];
  }
  DvSlot& dv(std::size_t obj, int p) {
    return dv_[obj * static_cast<std::size_t>(num_protocols_) +
               static_cast<std::size_t>(p)];
  }

  // --- setup -------------------------------------------------------------
  void InitObject(std::size_t obj);

  // --- failure/access processes (exact ports of model/failure_model.cc
  // and model/access_model.cc handlers) -----------------------------------
  void Dispatch(std::uint64_t payload);
  void ScheduleSiteFailure(std::size_t obj, SiteId s);
  void PublishSite(std::size_t obj, SiteId s);
  void NotifyNetworkEvent(std::size_t obj);
  void OnSiteFailure(std::size_t obj, SiteId s);
  void OnSiteRepair(std::size_t obj, SiteId s);
  void OnMaintenanceStart(std::size_t obj, SiteId s);
  void OnMaintenanceEnd(std::size_t obj, SiteId s);
  void ScheduleRepeaterFailure(std::size_t obj, int r);
  void OnRepeaterFailure(std::size_t obj, int r);
  void OnRepeaterRepair(std::size_t obj, int r);
  void OnAccess(std::size_t obj);

  // --- protocol fast paths (exact ports of core/mcv.cc and
  // core/dynamic_voting.cc over the SoA state) -----------------------------
  bool McvGranted(SiteSet copies) const;
  bool McvUserAccess(std::size_t obj, int p, AccessType type);
  EvalResult DvEvaluate(std::size_t obj, int p, SiteSet copies);
  void DvCommit(std::size_t obj, int p, SiteSet participants, OpNumber op,
                VersionNumber version, SiteSet partition);
  bool DvUserAccess(std::size_t obj, int p, AccessType type);
  bool DvRecover(std::size_t obj, int p, SiteId site);
  void DvReintegrateGroup(std::size_t obj, int p, SiteSet group);
  void DvOnNetworkEvent(std::size_t obj, int p);

  // --- sampling ----------------------------------------------------------
  GroupMemoSlot* MemoSlotFor(std::size_t obj, std::uint64_t mask);
  void InvalidateMemo(std::size_t obj, int p, std::uint64_t touched_mask);
  void Sample(std::size_t obj);

  /// True iff the object is in the all-fast steady state: every dynamic
  /// slot uniform and every copy in one communicating group. In that
  /// state each protocol's response to an access or a network event is a
  /// fixed pattern and the per-protocol evaluate/commit machinery can be
  /// skipped wholesale.
  bool Steady(std::size_t obj) {
    return divergent_counts_[obj] == 0 &&
           nets_[obj].FullyConnected(placement_);
  }

  /// Brings every tracker of the object to "available". A no-op when the
  /// previous sample already reported all-available — an
  /// available→available Update only rewrites the tracker's last-update
  /// time, which no statistic depends on.
  void MarkAllAvailable(std::size_t obj) {
    if (all_available_[obj]) return;
    for (int p = 0; p < num_protocols_; ++p) {
      ObservedSlot& obs = observed(obj, p);
      if (!obs.last_available) {
        obs.tracker.Update(now_, true);
        obs.last_available = true;
      }
    }
    all_available_[obj] = 1;
  }

  const ExperimentSpec& spec_;
  const SiteSet placement_;
  const std::vector<ProtocolPlan> plans_;
  const std::vector<std::uint64_t>& seeds_;
  const std::size_t num_objects_;
  const int num_protocols_;
  const SimTime start_;
  const SimTime horizon_;

  int num_sites_ = 0;
  int num_repeaters_ = 0;
  bool any_topological_ = false;
  bool any_non_optimistic_dv_ = false;

  CalendarQueue queue_;
  SimTime now_ = 0.0;

  // Per object.
  std::vector<NetworkState> nets_;
  std::vector<Rng> access_rngs_;
  std::vector<GroupMemoSlot> memo_;
  std::vector<int> memo_cursor_;
  /// Number of this object's dynamic slots currently out of uniform
  /// mode; 0 is a precondition of the steady-state fast path.
  std::vector<int> divergent_counts_;
  /// True while every tracker of the object last reported "available":
  /// steady-state events may then skip the tracker updates entirely
  /// (an available→available Update only rewrites the last-update time,
  /// which no statistic depends on).
  std::vector<std::uint8_t> all_available_;
  /// Steady-state event tallies, materialized into the message counters
  /// and access totals once at the end of the run — the per-event
  /// deltas of a steady access/notify are fixed patterns, and counter
  /// addition commutes with the slow paths' direct increments.
  std::vector<std::uint64_t> steady_reads_;
  std::vector<std::uint64_t> steady_writes_;
  std::vector<std::uint64_t> steady_notifies_;

  // Per (object, site) / (object, repeater) / (object, protocol).
  std::vector<SiteSlot> sites_;
  std::vector<Rng> repeater_rngs_;
  std::vector<ObservedSlot> observed_;
  std::vector<DvSlot> dv_;
  std::vector<DvEvalMemo> eval_memo_;  // indexed like dv_

  /// Per-site topological closure: all sites sharing the site's segment.
  std::vector<std::uint64_t> segment_mask_;
};

void BatchedEngine::InitObject(std::size_t obj) {
  // RNG fan-out in exactly the solo order: NetworkProcessModel::Make
  // splits one master stream to sites then repeaters; AccessProcess owns
  // an independent stream at seed ^ 0x5DEECE66D.
  Rng master(seeds_[obj]);
  for (SiteId s = 0; s < num_sites_; ++s) site_slot(obj, s).rng = master.Split();
  for (int r = 0; r < num_repeaters_; ++r) {
    repeater_rngs_[obj * static_cast<std::size_t>(num_repeaters_) +
                   static_cast<std::size_t>(r)] = master.Split();
  }
  access_rngs_[obj] = Rng(seeds_[obj] ^ 0x5DEECE66DULL);

  // NetworkProcessModel::Start(): per site, the first failure draw and
  // the maintenance phase draw; then per repeater, the first failure.
  for (SiteId s = 0; s < num_sites_; ++s) {
    ScheduleSiteFailure(obj, s);
    const SiteProfile& prof = spec_.profiles[static_cast<std::size_t>(s)];
    if (prof.maintenance_interval_days > 0.0 && prof.maintenance_hours > 0.0) {
      double phase =
          site_slot(obj, s).rng.NextDouble() * prof.maintenance_interval_days;
      queue_.Schedule(Days(phase),
                      Pack(EventKind::kMaintenanceStart, s, obj, 0));
    }
  }
  for (int r = 0; r < num_repeaters_; ++r) ScheduleRepeaterFailure(obj, r);

  // AccessProcess::Start().
  if (spec_.options.access.enabled) {
    const AccessOptions& a = spec_.options.access;
    double gap = a.deterministic
                     ? 1.0 / a.rate_per_day
                     : access_rngs_[obj].NextExponential(1.0 / a.rate_per_day);
    queue_.Schedule(now_ + gap, Pack(EventKind::kAccess, 0, obj, 0));
  }
}

// --- failure/access processes ---------------------------------------------

void BatchedEngine::ScheduleSiteFailure(std::size_t obj, SiteId s) {
  SiteSlot& slot = site_slot(obj, s);
  double ttf = slot.rng.NextExponential(
      spec_.profiles[static_cast<std::size_t>(s)].mttf_days);
  std::uint32_t gen = ++slot.failure_generation;
  queue_.Schedule(now_ + ttf, Pack(EventKind::kSiteFailure, s, obj, gen));
}

void BatchedEngine::PublishSite(std::size_t obj, SiteId s) {
  // The solo model notifies on every publish, even when the effective
  // up/down state did not flip (e.g. failure during maintenance).
  nets_[obj].SetSiteUp(s, site_slot(obj, s).EffectiveUp());
  NotifyNetworkEvent(obj);
}

void BatchedEngine::NotifyNetworkEvent(std::size_t obj) {
  // experiment.cc on_change: every protocol's OnNetworkEvent (a no-op
  // for MCV and the optimistic variants), then one sample.
  if (Steady(obj)) {
    // All copies in one group, every slot uniform: each instantaneous
    // protocol refreshes its (single) group and concludes membership is
    // current; the sample finds exactly one granted group per protocol.
    // The refresh traffic is a fixed pattern tallied for the end of the
    // run, and when every tracker already reads "available" the sample
    // would not change any of them.
    ++steady_notifies_[obj];
    MarkAllAvailable(obj);
    return;
  }
  if (any_non_optimistic_dv_) {
    for (int p = 0; p < num_protocols_; ++p) {
      const ProtocolPlan& plan = plans_[static_cast<std::size_t>(p)];
      if (plan.kind == BatchedKind::kDynamic && !plan.optimistic) {
        DvOnNetworkEvent(obj, p);
      }
    }
  }
  Sample(obj);
}

void BatchedEngine::OnSiteFailure(std::size_t obj, SiteId s) {
  SiteSlot& slot = site_slot(obj, s);
  slot.failed = true;
  PublishSite(obj, s);

  const SiteProfile& prof = spec_.profiles[static_cast<std::size_t>(s)];
  SimTime repair;
  if (slot.rng.NextBernoulli(prof.hardware_fraction)) {
    repair = Hours(prof.hw_repair_const_hours);
    if (prof.hw_repair_exp_hours > 0.0) {
      repair += Hours(slot.rng.NextExponential(prof.hw_repair_exp_hours));
    }
  } else {
    repair = Minutes(prof.restart_minutes);
  }
  queue_.Schedule(now_ + repair, Pack(EventKind::kSiteRepair, s, obj, 0));
}

void BatchedEngine::OnSiteRepair(std::size_t obj, SiteId s) {
  SiteSlot& slot = site_slot(obj, s);
  slot.failed = false;
  PublishSite(obj, s);
  if (slot.EffectiveUp()) ScheduleSiteFailure(obj, s);
}

void BatchedEngine::OnMaintenanceStart(std::size_t obj, SiteId s) {
  SiteSlot& slot = site_slot(obj, s);
  slot.in_maintenance = true;
  // Cancel the pending failure (solo: queue Cancel; here: stale the
  // generation so the event is dropped at dispatch).
  ++slot.failure_generation;
  PublishSite(obj, s);
  const SiteProfile& prof = spec_.profiles[static_cast<std::size_t>(s)];
  queue_.Schedule(now_ + Hours(prof.maintenance_hours),
                  Pack(EventKind::kMaintenanceEnd, s, obj, 0));
}

void BatchedEngine::OnMaintenanceEnd(std::size_t obj, SiteId s) {
  SiteSlot& slot = site_slot(obj, s);
  slot.in_maintenance = false;
  PublishSite(obj, s);
  if (slot.EffectiveUp()) ScheduleSiteFailure(obj, s);
  const SiteProfile& prof = spec_.profiles[static_cast<std::size_t>(s)];
  queue_.Schedule(now_ + Days(prof.maintenance_interval_days) -
                      Hours(prof.maintenance_hours),
                  Pack(EventKind::kMaintenanceStart, s, obj, 0));
}

void BatchedEngine::ScheduleRepeaterFailure(std::size_t obj, int r) {
  Rng& rng = repeater_rngs_[obj * static_cast<std::size_t>(num_repeaters_) +
                            static_cast<std::size_t>(r)];
  double ttf = rng.NextExponential(
      spec_.repeater_profiles[static_cast<std::size_t>(r)].mttf_days);
  queue_.Schedule(now_ + ttf, Pack(EventKind::kRepeaterFailure, r, obj, 0));
}

void BatchedEngine::OnRepeaterFailure(std::size_t obj, int r) {
  nets_[obj].SetRepeaterUp(r, false);
  NotifyNetworkEvent(obj);
  Rng& rng = repeater_rngs_[obj * static_cast<std::size_t>(num_repeaters_) +
                            static_cast<std::size_t>(r)];
  const RepeaterProfile& prof =
      spec_.repeater_profiles[static_cast<std::size_t>(r)];
  SimTime repair = Hours(prof.repair_const_hours);
  if (prof.repair_exp_hours > 0.0) {
    repair += Hours(rng.NextExponential(prof.repair_exp_hours));
  }
  queue_.Schedule(now_ + repair, Pack(EventKind::kRepeaterRepair, r, obj, 0));
}

void BatchedEngine::OnRepeaterRepair(std::size_t obj, int r) {
  nets_[obj].SetRepeaterUp(r, true);
  NotifyNetworkEvent(obj);
  ScheduleRepeaterFailure(obj, r);
}

void BatchedEngine::OnAccess(std::size_t obj) {
  Rng& rng = access_rngs_[obj];
  const AccessOptions& a = spec_.options.access;
  // AccessProcess::Fire draw order: access type, then the callback, then
  // the next arrival gap.
  AccessType type =
      rng.NextBernoulli(a.write_fraction) ? AccessType::kWrite
                                          : AccessType::kRead;
  if (Steady(obj)) {
    // Every protocol grants in its one full group: MCV has its static
    // majority, each dynamic variant finds Q = S = R = P_m. The message
    // pattern and access totals are fixed and tallied for the end of
    // the run; only the dynamic scalars must stay current (slow paths
    // read them), and covering commits keep the sample memo valid.
    const bool write = type == AccessType::kWrite;
    if (write) {
      ++steady_writes_[obj];
    } else {
      ++steady_reads_[obj];
    }
    for (int p = 0; p < num_protocols_; ++p) {
      if (plans_[static_cast<std::size_t>(p)].kind == BatchedKind::kMcv) {
        continue;
      }
      DvSlot& slot = dv(obj, p);
      slot.u_op += 1;
      if (write) slot.u_version += 1;
    }
    MarkAllAvailable(obj);
  } else {
    for (int p = 0; p < num_protocols_; ++p) {
      ObservedSlot& obs = observed(obj, p);
      ++obs.attempted;
      bool granted =
          plans_[static_cast<std::size_t>(p)].kind == BatchedKind::kMcv
              ? McvUserAccess(obj, p, type)
              : DvUserAccess(obj, p, type);
      if (granted) ++obs.granted;
    }
    Sample(obj);
  }
  double gap = a.deterministic ? 1.0 / a.rate_per_day
                               : rng.NextExponential(1.0 / a.rate_per_day);
  queue_.Schedule(now_ + gap, Pack(EventKind::kAccess, 0, obj, 0));
}

void BatchedEngine::Dispatch(std::uint64_t payload) {
  const std::size_t obj = ObjectOf(payload);
  const int entity = EntityOf(payload);
  switch (KindOf(payload)) {
    case EventKind::kSiteFailure:
      // Stale generation == the solo model's cancelled pending failure.
      if (GenerationOf(payload) !=
          site_slot(obj, entity).failure_generation) {
        return;
      }
      OnSiteFailure(obj, entity);
      return;
    case EventKind::kSiteRepair:
      OnSiteRepair(obj, entity);
      return;
    case EventKind::kMaintenanceStart:
      OnMaintenanceStart(obj, entity);
      return;
    case EventKind::kMaintenanceEnd:
      OnMaintenanceEnd(obj, entity);
      return;
    case EventKind::kRepeaterFailure:
      OnRepeaterFailure(obj, entity);
      return;
    case EventKind::kRepeaterRepair:
      OnRepeaterRepair(obj, entity);
      return;
    case EventKind::kAccess:
      OnAccess(obj);
      return;
  }
  DYNVOTE_CHECK_MSG(false, "unknown batched event kind");
}

// --- MCV fast path --------------------------------------------------------

bool BatchedEngine::McvGranted(SiteSet copies) const {
  // MCV::WouldGrant with uniform weights and default quorums
  // (r = w = total/2 + 1, lexicographic tie-break): the decision is a
  // pure function of the reachable-copies mask, so it can be memoized
  // forever — MCV never mutates decision-relevant state.
  const int total = placement_.Size();
  const int votes = copies.Size();
  if (votes >= total / 2 + 1) return true;
  return 2 * votes == total && copies.Contains(placement_.RankMax());
}

bool BatchedEngine::McvUserAccess(std::size_t obj, int p, AccessType type) {
  ObservedSlot& obs = observed(obj, p);
  for (const SiteSet& group : nets_[obj].Components()) {
    SiteSet copies = group.Intersect(placement_);
    if (copies.Empty()) continue;
    if (!McvGranted(copies)) continue;
    // MCV::Access: probe the whole replication set, then exchange state
    // with the reachable copies; writes additionally commit.
    obs.counter.Add(MessageKind::kProbe, placement_.Size());
    obs.counter.Add(MessageKind::kProbeReply, copies.Size());
    obs.counter.Add(MessageKind::kStateRequest, copies.Size());
    obs.counter.Add(MessageKind::kStateReply, copies.Size());
    if (type == AccessType::kWrite) {
      obs.counter.Add(MessageKind::kCommit, copies.Size());
    }
    return true;
  }
  return false;  // no quorum anywhere: no messages, like the solo path
}

// --- dynamic-voting fast path ---------------------------------------------

EvalResult BatchedEngine::DvEvaluate(std::size_t obj, int p, SiteSet copies) {
  const ProtocolPlan& plan = plans_[static_cast<std::size_t>(p)];
  DvSlot& slot = dv(obj, p);
  EvalResult r;
  r.reachable = copies;
  if (copies.Empty()) return r;

  if (slot.uniform) {
    // All copies share one ensemble, so Q = S = R and P_m is the stored
    // partition set (the full placement, by the uniform invariant).
    // Cheap enough to compute inline; deliberately not memoized — the
    // memo's stamp does not track the uniform o/v scalars, and a stale
    // max_op would corrupt the operation-number chain.
    r.quorum = copies;
    r.current = copies;
    r.prev = slot.u_partition;
    r.max_op = slot.u_op;
    r.max_version = slot.u_version;
    SiteSet counted = copies;
    if (plan.topological) {
      // Topological closure: members of P_m on a segment that also
      // carries a reachable member of P_m count as present.
      SiteSet active = slot.u_partition.Intersect(copies);
      std::uint64_t segments = 0;
      for (SiteId s : active) {
        segments |= segment_mask_[static_cast<std::size_t>(s)];
      }
      counted = SiteSet::FromMask(slot.u_partition.mask() & segments);
    }
    const int counted_weight = counted.Size();
    const int block_weight = slot.u_partition.Size();
    if (2 * counted_weight > block_weight) {
      r.granted = true;
    } else if (2 * counted_weight == block_weight) {
      r.granted = plan.tie_break == TieBreak::kLexicographic &&
                  !slot.u_partition.Empty() &&
                  copies.Contains(slot.u_partition.RankMax());
    }
    return r;
  }

  if (slot.local_valid && copies == slot.local_set) {
    // Locally uniform sub-ensemble: every reachable copy carries the
    // maximal (o, v) and P_m = local_set = R, so Q = S = R = P_m and the
    // majority test is 2|P_m| > |P_m| — granted without touching the
    // store. This is the hot state of the majority side between
    // consecutive accesses during a partition.
    r.granted = true;
    r.quorum = copies;
    r.current = copies;
    r.prev = copies;
    r.max_op = slot.local_op;
    r.max_version = slot.local_version;
    return r;
  }

  DvEvalMemo& memo = eval_memo_[obj * static_cast<std::size_t>(num_protocols_) +
                                static_cast<std::size_t>(p)];
  for (const DvEvalMemo::Entry& e : memo.entries) {
    if (e.mask == copies.mask() && e.stamp == slot.commit_stamp) {
      return e.result;
    }
  }

  EnsureMaterialized(slot);
  QuorumDecision d = EvaluateDynamicQuorum(
      slot.store, copies, plan.tie_break,
      plan.topological ? spec_.topology.get() : nullptr);
  r.granted = d.granted;
  r.quorum = d.quorum_set;
  r.current = d.current_set;
  r.prev = d.prev_partition;
  r.max_op = slot.store.state(d.quorum_set.RankMax()).op_number;
  r.max_version = slot.store.state(d.current_set.RankMax()).version;

  DvEvalMemo::Entry& victim = memo.entries[memo.cursor];
  memo.cursor ^= 1;
  victim.mask = copies.mask();
  victim.stamp = slot.commit_stamp;
  victim.result = r;
  return r;
}

void BatchedEngine::DvCommit(std::size_t obj, int p, SiteSet participants,
                             OpNumber op, VersionNumber version,
                             SiteSet partition) {
  DvSlot& slot = dv(obj, p);
  const bool covers = placement_.IsSubsetOf(participants);
  if (slot.uniform) {
    if (covers) {
      // Uniform stays uniform. The partition set is the placement before
      // and after (every covering DV commit installs P = participants =
      // placement), and grant decisions do not depend on the absolute
      // o/v values — the memo stays valid.
      slot.u_op = op;
      slot.u_version = version;
      if (partition != slot.u_partition) {
        // Cannot happen for the paper's protocols (covering commits
        // always install P = placement), but a changed partition set
        // does change decisions — drop the memos if it ever does.
        slot.u_partition = partition;
        ++slot.commit_stamp;
        InvalidateMemo(obj, p, ~std::uint64_t{0});
      }
      return;
    }
    // Leaving uniform mode: materialize the store the scalars stand for,
    // then apply the divergent commit to it.
    for (SiteId s : placement_) {
      ReplicaState* state = slot.store.mutable_state(s);
      state->op_number = slot.u_op;
      state->version = slot.u_version;
      state->partition_set = slot.u_partition;
    }
    slot.uniform = false;
    ++divergent_counts_[obj];
  } else if (slot.local_valid && participants == slot.local_set &&
             partition == participants) {
    // Repeat commit of the locally uniform group (consecutive accesses
    // on the majority side of a partition): the group's members move to
    // the new (o, v) together and P_m stays local_set, so no evaluation
    // anywhere can observe a difference — every grant decision depends
    // on relative order and membership only. Bump the scalars and leave
    // the store rows stale; they are rewritten before the next store
    // read. Cached maxima for masks overlapping the group DO go stale,
    // so those memo entries are dropped (disjoint ones — the other side
    // of the partition — survive, which is the point).
    slot.local_op = op;
    slot.local_version = version;
    slot.local_dirty = true;
    DvEvalMemo& memo =
        eval_memo_[obj * static_cast<std::size_t>(num_protocols_) +
                   static_cast<std::size_t>(p)];
    const std::uint64_t local_mask = slot.local_set.mask();
    for (DvEvalMemo::Entry& e : memo.entries) {
      if (e.mask & local_mask) e.stamp = ~std::uint64_t{0};
    }
    return;
  }
  EnsureMaterialized(slot);
  slot.store.Commit(participants, op, version, partition);
  if (covers) {
    // Back to uniform: the covering commit overwrote every copy.
    slot.uniform = true;
    slot.u_op = op;
    slot.u_version = version;
    slot.u_partition = partition;
    slot.local_valid = false;
    slot.local_dirty = false;
    --divergent_counts_[obj];
  } else {
    slot.local_set = slot.store.CopiesAmong(participants);
    slot.local_valid =
        partition == participants && slot.local_set == participants;
    slot.local_op = op;
    slot.local_version = version;
    slot.local_dirty = false;  // the real Commit above wrote the rows
  }

  // The commit rewrote exactly the participants' states. Memo entries
  // for disjoint groups (the other side of a partition) survive; their
  // stamp is refreshed so they remain hits under the new stamp.
  const std::uint64_t touched = participants.mask();
  const std::uint64_t old_stamp = slot.commit_stamp++;
  DvEvalMemo& memo = eval_memo_[obj * static_cast<std::size_t>(num_protocols_) +
                                static_cast<std::size_t>(p)];
  for (DvEvalMemo::Entry& e : memo.entries) {
    if (e.stamp == old_stamp && (e.mask & touched) == 0) {
      e.stamp = slot.commit_stamp;
    }
  }
  InvalidateMemo(obj, p, touched);
}

bool BatchedEngine::DvUserAccess(std::size_t obj, int p, AccessType type) {
  // DynamicVoting::UserAccess + Access, fused: find the first granted
  // group, charge the Access message pattern, commit, reintegrate.
  ObservedSlot& obs = observed(obj, p);
  for (const SiteSet& group : nets_[obj].Components()) {
    SiteSet copies = group.Intersect(placement_);
    if (copies.Empty()) continue;
    EvalResult d = DvEvaluate(obj, p, copies);
    if (!d.granted) continue;

    obs.counter.Add(MessageKind::kProbe, placement_.Size());
    obs.counter.Add(MessageKind::kProbeReply, copies.Size());
    obs.counter.Add(MessageKind::kStateRequest, copies.Size());
    obs.counter.Add(MessageKind::kStateReply, copies.Size());

    const OpNumber op = d.max_op + 1;
    const VersionNumber version =
        d.max_version + (type == AccessType::kWrite ? 1 : 0);
    DvCommit(obj, p, d.current, op, version, d.current);
    obs.counter.Add(MessageKind::kCommit, d.current.Size());
    DvReintegrateGroup(obj, p, copies);
    return true;
  }
  return false;  // NoQuorum: no messages
}

bool BatchedEngine::DvRecover(std::size_t obj, int p, SiteId site) {
  ObservedSlot& obs = observed(obj, p);
  SiteSet copies = nets_[obj].ComponentOf(site).Intersect(placement_);
  EvalResult d = DvEvaluate(obj, p, copies);
  if (!d.granted) {
    obs.counter.Add(MessageKind::kAbort, d.reachable.Size());
    return false;
  }
  DvSlot& slot = dv(obj, p);
  const OpNumber op = d.max_op + 1;
  const VersionNumber version = d.max_version;
  // While uniform, the site's row logically carries the uniform scalars.
  // While locally dirty the stale rows are exactly local_set's — whose
  // members all carry the maximal op and are never the recovery target —
  // so the direct read is safe either way.
  const VersionNumber site_version =
      slot.uniform ? slot.u_version : slot.store.state(site).version;
  if (site_version < version) obs.counter.Add(MessageKind::kFileCopy, 1);
  SiteSet participants = d.current.Union(SiteSet{site});
  DvCommit(obj, p, participants, op, version, participants);
  obs.counter.Add(MessageKind::kCommit, participants.Size());
  return true;
}

void BatchedEngine::DvReintegrateGroup(std::size_t obj, int p, SiteSet group) {
  DvSlot& slot = dv(obj, p);
  // In uniform mode every copy already carries the maximal operation
  // number — reintegration is a no-op by definition.
  if (slot.uniform) return;
  SiteSet copies = slot.store.CopiesAmong(group);
  // Locally uniform group: every copy already carries the maximal op
  // number (the definition of local_set), so the scan below would find
  // nothing to recover.
  if (slot.local_valid && copies == slot.local_set) return;
  EnsureMaterialized(slot);
  // MaxOp over the group only moves when a recover commits (it can raise
  // the bar for the rest, exactly as in DynamicVoting); between recovers
  // the cached value is exact.
  OpNumber max_op = slot.store.MaxOp(copies);
  for (SiteId s : copies) {
    if (slot.store.state(s).op_number < max_op) {
      bool ok = DvRecover(obj, p, s);
      DYNVOTE_CHECK_MSG(ok,
                        "reintegration inside a granted group must succeed");
      if (slot.uniform) return;  // a covering recover re-uniformized
      max_op = slot.store.MaxOp(copies);
    }
  }
}

void BatchedEngine::DvOnNetworkEvent(std::size_t obj, int p) {
  // The instantaneous variants refresh state in every group on every
  // network event (the paper's "connection vector" cost).
  ObservedSlot& obs = observed(obj, p);
  for (const SiteSet& group : nets_[obj].Components()) {
    SiteSet copies = group.Intersect(placement_);
    if (copies.Empty()) continue;
    obs.counter.Add(MessageKind::kInstantRefresh, 2 * copies.Size());
    DvSlot& slot = dv(obj, p);
    if (slot.uniform && copies == slot.u_partition) {
      // Membership is necessarily current: S = R = P_m. Skip the
      // evaluate; the solo path reaches the same no-op conclusion.
      continue;
    }
    EvalResult d = DvEvaluate(obj, p, copies);
    if (!d.granted) continue;
    const bool membership_current = d.current == d.prev && copies == d.current;
    if (membership_current) continue;
    DvCommit(obj, p, d.current, d.max_op + 1, d.max_version, d.current);
    obs.counter.Add(MessageKind::kCommit, d.current.Size());
    DvReintegrateGroup(obj, p, copies);
  }
}

// --- sampling -------------------------------------------------------------

GroupMemoSlot* BatchedEngine::MemoSlotFor(std::size_t obj,
                                          std::uint64_t mask) {
  GroupMemoSlot* base = &memo_[obj * kGroupMemoSlots];
  for (int i = 0; i < kGroupMemoSlots; ++i) {
    if (base[i].mask == mask) return &base[i];
  }
  int victim = memo_cursor_[obj];
  memo_cursor_[obj] = (victim + 1) % kGroupMemoSlots;
  base[victim] = GroupMemoSlot{mask, 0, 0};
  return &base[victim];
}

void BatchedEngine::InvalidateMemo(std::size_t obj, int p,
                                   std::uint64_t touched_mask) {
  // A quorum evaluation over group G reads only the states of G's
  // members, so a commit invalidates exactly the slots whose group
  // intersects the committed participants. During a partition the
  // majority side's commits leave the minority side's cached denial
  // untouched.
  const std::uint32_t clear = ~(std::uint32_t{1} << p);
  GroupMemoSlot* base = &memo_[obj * kGroupMemoSlots];
  for (int i = 0; i < kGroupMemoSlots; ++i) {
    if (base[i].mask & touched_mask) base[i].valid &= clear;
  }
}

void BatchedEngine::Sample(std::size_t obj) {
  const std::vector<SiteSet>& groups = nets_[obj].Components();
  // Per-protocol grant tallies as bitmasks: `once` has protocol p's bit
  // if any group granted, `twice` if a second group did (the
  // dual-majority case). Two words replace a zeroed per-protocol array.
  std::uint32_t once = 0;
  std::uint32_t twice = 0;
  for (const SiteSet& group : groups) {
    SiteSet copies = group.Intersect(placement_);
    if (copies.Empty()) continue;
    GroupMemoSlot* slot = MemoSlotFor(obj, copies.mask());
    std::uint32_t group_granted = slot->granted & slot->valid;
    std::uint32_t missing = ~slot->valid & ((std::uint32_t{1} << num_protocols_) - 1);
    while (missing != 0) {
      const int p = std::countr_zero(missing);
      const std::uint32_t bit = std::uint32_t{1} << p;
      missing &= missing - 1;
      const bool granted =
          plans_[static_cast<std::size_t>(p)].kind == BatchedKind::kMcv
              ? McvGranted(copies)
              : DvEvaluate(obj, p, copies).granted;
      slot->valid |= bit;
      if (granted) {
        slot->granted |= bit;
        group_granted |= bit;
      } else {
        slot->granted &= ~bit;
      }
    }
    twice |= once & group_granted;
    once |= group_granted;
  }
  bool all_available = true;
  for (int p = 0; p < num_protocols_; ++p) {
    ObservedSlot& obs = observed(obj, p);
    const std::uint32_t bit = std::uint32_t{1} << p;
    if (twice & bit) {
      ++obs.dual_majority_instants;
      if (spec_.options.check_mutual_exclusion &&
          plans_[static_cast<std::size_t>(p)].partition_safe()) {
        DYNVOTE_CHECK_MSG(
            (twice & bit) == 0,
            "two disjoint majority partitions (batched engine): " +
                plans_[static_cast<std::size_t>(p)].name + " at t=" +
                std::to_string(now_));
      }
    }
    const bool available = (once & bit) != 0;
    // Available-while-available updates only rewrite the tracker's
    // last-update time; skip them. Unavailable spans must still be fed
    // update-by-update so the outage accumulation sums in the same
    // floating-point order as the solo engine.
    if (!(available && obs.last_available)) {
      obs.tracker.Update(now_, available);
      obs.last_available = available;
    }
    all_available = all_available && available;
  }
  all_available_[obj] = all_available ? 1 : 0;
}

// --- top level ------------------------------------------------------------

Result<std::vector<std::vector<PolicyResult>>> BatchedEngine::Run() {
  num_sites_ = spec_.topology->num_sites();
  num_repeaters_ = spec_.topology->num_repeaters();
  for (const ProtocolPlan& plan : plans_) {
    if (plan.topological) any_topological_ = true;
    if (plan.kind == BatchedKind::kDynamic && !plan.optimistic) {
      any_non_optimistic_dv_ = true;
    }
  }

  segment_mask_.resize(static_cast<std::size_t>(num_sites_));
  for (SiteId s = 0; s < num_sites_; ++s) {
    segment_mask_[static_cast<std::size_t>(s)] =
        spec_.topology->SitesOnSegment(spec_.topology->SegmentOf(s)).mask();
  }

  nets_.reserve(num_objects_);
  access_rngs_.resize(num_objects_);
  memo_.resize(num_objects_ * kGroupMemoSlots);
  memo_cursor_.assign(num_objects_, 0);
  divergent_counts_.assign(num_objects_, 0);
  all_available_.assign(num_objects_, 1);
  steady_reads_.assign(num_objects_, 0);
  steady_writes_.assign(num_objects_, 0);
  steady_notifies_.assign(num_objects_, 0);
  sites_.resize(num_objects_ * static_cast<std::size_t>(num_sites_));
  repeater_rngs_.resize(num_objects_ *
                        static_cast<std::size_t>(num_repeaters_));
  observed_.reserve(num_objects_ * static_cast<std::size_t>(num_protocols_));
  dv_.reserve(num_objects_ * static_cast<std::size_t>(num_protocols_));
  eval_memo_.assign(num_objects_ * static_cast<std::size_t>(num_protocols_),
                    DvEvalMemo{});
  for (std::size_t obj = 0; obj < num_objects_; ++obj) {
    nets_.emplace_back(spec_.topology);
    for (int p = 0; p < num_protocols_; ++p) {
      observed_.emplace_back(AvailabilityTracker(
          start_, spec_.options.batch_length, spec_.options.num_batches));
      auto store = ReplicaStore::Make(placement_);
      if (!store.ok()) return store.status();
      dv_.emplace_back(store.MoveValue());
      dv_.back().u_partition = placement_;
    }
  }

  for (std::size_t obj = 0; obj < num_objects_; ++obj) InitObject(obj);

  // The fused event loop: one calendar queue over every object's events,
  // popped in (time, schedule-seq) order — the same order in which N
  // solo EventQueues would have dispatched them per object.
  // Popping the first beyond-horizon event (instead of peeking first)
  // avoids locating the minimum twice per step; the queue is discarded
  // when the loop ends, so the extra pop is unobservable.
  while (!queue_.Empty()) {
    CalendarEvent event = queue_.PopNext();
    if (event.when > horizon_) break;
    now_ = event.when;
    Dispatch(event.payload);
  }
  now_ = horizon_;

  std::vector<std::vector<PolicyResult>> results;
  results.reserve(num_objects_);
  for (std::size_t obj = 0; obj < num_objects_; ++obj) {
    // Materialize the steady-state tallies: every steady access charged
    // each protocol the full-group message pattern and counted as a
    // granted attempt; every steady network event charged each
    // instantaneous protocol one full-group refresh.
    const std::uint64_t total = static_cast<std::uint64_t>(placement_.Size());
    const std::uint64_t reads = steady_reads_[obj];
    const std::uint64_t writes = steady_writes_[obj];
    const std::uint64_t accesses = reads + writes;
    for (int p = 0; p < num_protocols_; ++p) {
      ObservedSlot& obs = observed(obj, p);
      const ProtocolPlan& plan = plans_[static_cast<std::size_t>(p)];
      obs.attempted += accesses;
      obs.granted += accesses;
      obs.counter.Add(MessageKind::kProbe, total * accesses);
      obs.counter.Add(MessageKind::kProbeReply, total * accesses);
      obs.counter.Add(MessageKind::kStateRequest, total * accesses);
      obs.counter.Add(MessageKind::kStateReply, total * accesses);
      if (plan.kind == BatchedKind::kMcv) {
        obs.counter.Add(MessageKind::kCommit, total * writes);
      } else {
        obs.counter.Add(MessageKind::kCommit, total * accesses);
        if (!plan.optimistic) {
          obs.counter.Add(MessageKind::kInstantRefresh,
                          2 * total * steady_notifies_[obj]);
        }
      }
    }
    std::vector<PolicyResult> rows;
    rows.reserve(static_cast<std::size_t>(num_protocols_));
    for (int p = 0; p < num_protocols_; ++p) {
      ObservedSlot& obs = observed(obj, p);
      obs.tracker.Finish(horizon_);
      PolicyResult r;
      r.name = plans_[static_cast<std::size_t>(p)].name;
      r.unavailability = obs.tracker.Unavailability();
      r.stats = obs.tracker.Stats();
      r.mean_unavailable_duration = obs.tracker.MeanUnavailableDuration();
      r.num_unavailable_periods = obs.tracker.NumUnavailablePeriods();
      r.accesses_attempted = obs.attempted;
      r.accesses_granted = obs.granted;
      r.messages = obs.counter;
      r.measured_time = obs.tracker.TotalTime();
      r.dual_majority_instants = obs.dual_majority_instants;
      r.time_to_first_outage = obs.tracker.TimeToFirstOutage();
      rows.push_back(std::move(r));
    }
    results.push_back(std::move(rows));
  }
  return results;
}

}  // namespace

bool BatchedEngineSupports(const std::vector<std::string>& policies) {
  if (policies.empty() ||
      policies.size() > static_cast<std::size_t>(kMaxBatchedProtocols)) {
    return false;
  }
  ProtocolPlan plan;
  for (const std::string& name : policies) {
    if (!PlanFor(name, &plan)) return false;
  }
  return true;
}

Result<std::vector<std::vector<PolicyResult>>>
RunBatchedAvailabilityExperiment(const ExperimentSpec& spec,
                                 const BatchedProtocolSpec& protocols,
                                 const std::vector<std::uint64_t>& seeds) {
  // Mirror the validation of RunAvailabilityExperiment and the process
  // factories it calls, so the batched and per-replication paths reject
  // the same inputs.
  if (spec.topology == nullptr) {
    return Status::InvalidArgument("experiment needs a topology");
  }
  if (spec.obs != nullptr) {
    return Status::InvalidArgument(
        "the batched engine is observability-free; route traced runs "
        "through the per-replication path");
  }
  if (protocols.policies.empty()) {
    return Status::InvalidArgument("experiment needs at least one protocol");
  }
  if (!BatchedEngineSupports(protocols.policies)) {
    return Status::InvalidArgument(
        "policy set not supported by the batched engine");
  }
  if (spec.options.num_batches < 1 || spec.options.batch_length <= 0.0 ||
      spec.options.warmup < 0.0) {
    return Status::InvalidArgument("bad measurement window");
  }
  if (protocols.placement.Empty() ||
      !protocols.placement.IsSubsetOf(spec.topology->AllSites())) {
    return Status::InvalidArgument(
        "placement must be a non-empty subset of the topology's sites");
  }
  if (static_cast<int>(spec.profiles.size()) != spec.topology->num_sites()) {
    return Status::InvalidArgument("need one SiteProfile per site");
  }
  if (static_cast<int>(spec.repeater_profiles.size()) !=
      spec.topology->num_repeaters()) {
    return Status::InvalidArgument("need one RepeaterProfile per repeater");
  }
  for (const SiteProfile& p : spec.profiles) {
    if (p.mttf_days <= 0.0) {
      return Status::InvalidArgument("site MTTF must be > 0");
    }
    if (p.hardware_fraction < 0.0 || p.hardware_fraction > 1.0) {
      return Status::InvalidArgument("hardware fraction outside [0, 1]");
    }
  }
  for (const RepeaterProfile& p : spec.repeater_profiles) {
    if (p.mttf_days <= 0.0) {
      return Status::InvalidArgument("repeater MTTF must be > 0");
    }
  }
  if (spec.options.access.enabled) {
    if (spec.options.access.rate_per_day <= 0.0) {
      return Status::InvalidArgument("access rate must be > 0");
    }
    if (spec.options.access.write_fraction < 0.0 ||
        spec.options.access.write_fraction > 1.0) {
      return Status::InvalidArgument("write fraction outside [0, 1]");
    }
  }
  if (seeds.empty()) {
    return Status::InvalidArgument("batched run needs at least one seed");
  }
  if (seeds.size() > kMaxBatchedObjects) {
    return Status::InvalidArgument("too many objects for one batch");
  }

  std::vector<ProtocolPlan> plans(protocols.policies.size());
  for (std::size_t i = 0; i < protocols.policies.size(); ++i) {
    if (!PlanFor(protocols.policies[i], &plans[i])) {
      return Status::InvalidArgument("policy set not supported");
    }
  }

  BatchedEngine engine(spec, protocols.placement, std::move(plans), seeds);
  return engine.Run();
}

}  // namespace dynvote
