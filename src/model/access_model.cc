#include "model/access_model.h"

namespace dynvote {

Result<std::unique_ptr<AccessProcess>> AccessProcess::Make(
    Simulator* sim, AccessOptions options, std::uint64_t seed) {
  if (sim == nullptr) {
    return Status::InvalidArgument("simulator must not be null");
  }
  if (options.enabled && options.rate_per_day <= 0.0) {
    return Status::InvalidArgument("access rate must be > 0");
  }
  if (options.write_fraction < 0.0 || options.write_fraction > 1.0) {
    return Status::InvalidArgument("write fraction outside [0, 1]");
  }
  return std::unique_ptr<AccessProcess>(
      new AccessProcess(sim, options, seed));
}

void AccessProcess::Start() {
  if (options_.enabled) ScheduleNext();
}

void AccessProcess::ScheduleNext() {
  double gap = options_.deterministic
                   ? 1.0 / options_.rate_per_day
                   : rng_.NextExponential(1.0 / options_.rate_per_day);
  sim_->ScheduleIn(gap, [this](SimTime) { Fire(); });
}

void AccessProcess::Fire() {
  ++total_;
  AccessType type = rng_.NextBernoulli(options_.write_fraction)
                        ? AccessType::kWrite
                        : AccessType::kRead;
  if (callback_) callback_(type);
  ScheduleNext();
}

}  // namespace dynvote
