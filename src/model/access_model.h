// The access workload of Section 4: a single user who attempts to access
// the replicated file (from any live site) at some rate — one access per
// day in the paper's Optimistic Dynamic Voting measurements. Accesses are
// the only instants at which optimistic protocols exchange state.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/protocol.h"
#include "sim/simulator.h"
#include "util/result.h"
#include "util/rng.h"

namespace dynvote {

/// Workload shape.
struct AccessOptions {
  /// Mean accesses per day. Must be > 0; set `enabled` false for a
  /// workload with no accesses at all.
  double rate_per_day = 1.0;
  /// If true, accesses arrive exactly 1/rate apart; otherwise arrivals
  /// are Poisson (exponential gaps).
  bool deterministic = false;
  /// Fraction of accesses that are writes; the remainder are reads.
  double write_fraction = 0.5;
  /// Disables the workload entirely when false.
  bool enabled = true;
};

/// Generates access events on a Simulator.
class AccessProcess {
 public:
  /// Invoked for each access attempt.
  using AccessCallback = std::function<void(AccessType)>;

  /// Creates the process; fails on a non-positive rate or a write
  /// fraction outside [0, 1].
  static Result<std::unique_ptr<AccessProcess>> Make(Simulator* sim,
                                                     AccessOptions options,
                                                     std::uint64_t seed);

  AccessProcess(const AccessProcess&) = delete;
  AccessProcess& operator=(const AccessProcess&) = delete;

  void set_callback(AccessCallback callback) {
    callback_ = std::move(callback);
  }

  /// Schedules the first access. Call once.
  void Start();

  std::uint64_t total_accesses() const { return total_; }

 private:
  AccessProcess(Simulator* sim, AccessOptions options, std::uint64_t seed)
      : sim_(sim), options_(options), rng_(seed) {}

  void ScheduleNext();
  void Fire();

  Simulator* sim_;
  AccessOptions options_;
  Rng rng_;
  AccessCallback callback_;
  std::uint64_t total_ = 0;
};

}  // namespace dynvote
