// The multi-replication experiment engine. One RunAvailabilityExperiment
// call observes every protocol over a single sample path (common random
// numbers); this layer runs R *independent* replications of that
// experiment — each with its own deterministically derived seed — across
// a fixed-size thread pool, and aggregates the per-protocol results into
// cross-replication means with 95 % confidence intervals.
//
// Determinism contract: the output is a pure function of (spec, factory,
// replications). The job count only changes wall-clock time — results are
// bit-identical for any `jobs` value because every replication writes
// into its own pre-assigned slot and aggregation walks the slots in
// replication order. Replication 0 runs with the master seed itself, so
// `replications = 1` reproduces the sequential RunAvailabilityExperiment
// byte for byte.
//
// Threading model: each replication owns a private Simulator, NetworkState
// and protocol set, all confined to the worker thread that runs it (the
// single-thread confinement documented in core/protocol.h is preserved
// per-replication). Only the immutable ExperimentSpec is shared.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "model/batched_experiment.h"
#include "model/experiment.h"
#include "obs/metrics.h"
#include "repl/message_bus.h"
#include "stats/replication_stats.h"
#include "util/result.h"

namespace dynvote {

/// Wire format for collected traces.
enum class TraceFormat {
  kJsonl,   ///< dynvote-trace-v1 JSONL lines
  kBinary,  ///< dynvote-btrace-v1 length-prefixed binary records
};

/// How many replications to run and how wide to fan out.
struct ReplicationOptions {
  /// Number of independent replications (>= 1).
  int replications = 1;
  /// Worker threads; 1 = run inline on the calling thread, 0 = one per
  /// hardware thread. Never affects results, only wall-clock time.
  int jobs = 1;
  /// Collect a trace per replication into ReplicatedResults::traces.
  /// Each worker writes into its own buffer (never a shared sink), so
  /// traces are bit-identical for any `jobs` value — as are the
  /// statistical outputs, which tracing never perturbs.
  bool collect_traces = false;
  /// Encoding of the collected trace bodies.
  TraceFormat trace_format = TraceFormat::kJsonl;
  /// Collect metrics into per-replication shards, merged in replication
  /// order into ReplicatedResults::metrics at join.
  bool collect_metrics = false;
  /// Objects per batched-engine event loop. When > 1 and a batched
  /// protocol spec is supplied (and the run is untraced/unmetered),
  /// replications are grouped into consecutive runs of this size and each
  /// group executes through model/batched_experiment.h instead of one
  /// Simulator per replication. Never affects results — the batched
  /// engine's bit-identity contract makes every grouping produce the same
  /// bytes as objects = 1 — only wall-clock time.
  int objects = 1;
};

/// Cross-replication aggregate for one protocol.
struct AggregatePolicyResult {
  std::string name;
  int replications = 0;
  /// Mean + CI of the per-replication unavailability fractions.
  ReplicationSummary unavailability;
  /// Mean + CI of the per-replication mean outage durations, over the
  /// replications that had at least one outage.
  ReplicationSummary mean_outage_duration;
  int replications_with_outages = 0;
  /// Mean + CI of time-to-first-outage (days from measurement start),
  /// over the replications where an outage occurred. Replications whose
  /// file never became unavailable are right-censored at the horizon and
  /// tracked in the summary's num_censored — never averaged in as if the
  /// outage had happened at the horizon.
  ReplicationSummary time_to_first_outage;
  /// Totals summed over all replications.
  std::uint64_t accesses_attempted = 0;
  std::uint64_t accesses_granted = 0;
  std::uint64_t num_unavailable_periods = 0;
  std::uint64_t dual_majority_instants = 0;
  MessageCounter messages;
  double measured_days = 0.0;
};

/// Everything a replicated run produces.
struct ReplicatedResults {
  /// per_replication[r][p]: protocol p's result in replication r.
  std::vector<std::vector<PolicyResult>> per_replication;
  /// aggregate[p]: protocol p across all replications.
  std::vector<AggregatePolicyResult> aggregate;
  /// The seed each replication ran with (seeds[0] == the master seed).
  std::vector<std::uint64_t> seeds;
  /// traces[r]: replication r's rep-tagged event stream, headerless, in
  /// ReplicationOptions::trace_format (JSONL lines, or binary records
  /// whose string tables restart per body — concatenating bodies behind
  /// one BinaryTraceHeader yields a valid file). Empty unless
  /// ReplicationOptions::collect_traces.
  std::vector<std::string> traces;
  /// All replications' metrics, merged in replication order. Empty unless
  /// ReplicationOptions::collect_metrics.
  MetricsShard metrics;
};

/// The seed replication `replication` runs with. Replication 0 uses the
/// master seed unchanged (sequential compatibility); replication r > 0
/// uses the r-th output of a SplitMix64 stream seeded with the master
/// seed, the standard seed-expansion scheme of util/rng.h.
std::uint64_t ReplicationSeed(std::uint64_t master_seed, int replication);

/// Builds one replication's protocol set. Invoked once per replication,
/// possibly concurrently from worker threads: it must be thread-safe,
/// which in practice means it only reads shared immutable data (topology,
/// placement) and allocates fresh protocol instances.
using ProtocolSetFactory = std::function<
    Result<std::vector<std::unique_ptr<ConsistencyProtocol>>>()>;

/// Runs `options.replications` independent replications of
/// RunAvailabilityExperiment(spec, factory()) over `options.jobs` worker
/// threads and aggregates. `spec.options.seed` is the master seed; each
/// replication runs with ReplicationSeed(master, r).
///
/// When `batched` is non-null, `options.objects` > 1, the run collects
/// neither traces nor metrics, spec.obs is null, and every policy has a
/// batched implementation (BatchedEngineSupports), replications execute
/// in groups of `options.objects` through the batched multi-object
/// engine. The engine's bit-identity contract guarantees the output is
/// byte-identical either way; `batched` must name the same protocol set
/// (same order) the factory builds.
Result<ReplicatedResults> RunReplicatedExperiment(
    const ExperimentSpec& spec, const ProtocolSetFactory& factory,
    const ReplicationOptions& options,
    const BatchedProtocolSpec* batched = nullptr);

/// Replicated analogue of RunPaperExperiment: paper network, placement
/// per configuration `config_label`, the named policies.
Result<ReplicatedResults> RunReplicatedPaperExperiment(
    char config_label, const std::vector<std::string>& policies,
    const ExperimentOptions& options,
    const ReplicationOptions& replication);

/// Flattens aggregates into one PolicyResult per protocol whose scalar
/// fields are the cross-replication means (counters are summed), for
/// table/CSV paths built around single-run rows. With one replication
/// this is exactly per_replication[0].
std::vector<PolicyResult> MeanPolicyResults(const ReplicatedResults& results);

}  // namespace dynvote
