// The batched multi-object simulation engine: N independent replicated
// files ("objects") run through ONE event loop over a CalendarQueue,
// with replica/protocol state held as struct-of-arrays — per-object
// site up/down bits, 64-bit SiteSet masks, vote counters and operation/
// version scalars in contiguous arrays — instead of N Simulator +
// protocol-object heaps. The paper's one-access-per-day workload is the
// sparse-event regime where per-object fixed costs (event-queue
// comparisons, std::function dispatch, virtual protocol calls) dominate;
// batching amortizes them across objects.
//
// Bit-identity contract (the hard constraint carried from PRs 1-2):
// PolicyResult rows for object k in a batch of N are bit-identical to a
// solo RunAvailabilityExperiment with seed seeds[k] — same tracker
// updates, counters, grant decisions and RNG draw sequence. The engine
// guarantees this by construction:
//   - each object owns private Rng streams split exactly as the solo
//     NetworkProcessModel / AccessProcess split them (Rng master(seed),
//     sites then repeaters via master.Split(); access stream seeded
//     seed ^ 0x5DEECE66D);
//   - the calendar queue pops in (time, schedule-seq) order, so each
//     object's events fire in the same relative order a solo EventQueue
//     would fire them;
//   - protocol decisions use an integer fast path (all-copies-equal
//     "uniform" mode: popcount majority tests over SiteSet masks) that
//     falls back to the real ReplicaStore + EvaluateDynamicQuorum the
//     moment a commit leaves the copies divergent, so every decision
//     equals the solo protocol object's decision.
//
// The engine is deliberately observability-free: traced or metered runs
// route through the per-replication instrumented path (see
// model/replicated_experiment.cc), which produces identical statistics.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/experiment.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {

/// Protocol selection for the batched engine: registry names sharing one
/// placement (the paper's experiments always compare protocols over a
/// common placement).
struct BatchedProtocolSpec {
  std::vector<std::string> policies;
  SiteSet placement;
};

/// True iff every named policy has a batched fast-path implementation:
/// the paper set MCV, DV, LDV, ODV, TDV, OTDV (at most 32 policies).
/// Anything else (AC, JM-DV, weighted/witness variants) must run through
/// the per-replication protocol objects.
bool BatchedEngineSupports(const std::vector<std::string>& policies);

/// Runs seeds.size() independent objects through one event loop.
/// Returns one PolicyResult row vector per object, in seed order;
/// results[k][p] is bit-identical to what RunAvailabilityExperiment
/// would report for policy p with spec.options.seed = seeds[k].
/// spec.options.seed itself is ignored; spec.obs must be null.
Result<std::vector<std::vector<PolicyResult>>>
RunBatchedAvailabilityExperiment(const ExperimentSpec& spec,
                                 const BatchedProtocolSpec& protocols,
                                 const std::vector<std::uint64_t>& seeds);

}  // namespace dynvote
