#include "model/experiment.h"

#include "core/dynamic_voting.h"
#include "core/registry.h"
#include "model/failure_model.h"
#include "net/network_state.h"
#include "sim/simulator.h"
#include "stats/tracker.h"
#include "util/logging.h"

namespace dynvote {

namespace {

/// One protocol under observation.
struct Observed {
  ConsistencyProtocol* protocol;
  AvailabilityTracker tracker;
  std::uint64_t attempted = 0;
  std::uint64_t granted = 0;
  std::uint64_t dual_majority_instants = 0;
  /// Serving-model bookkeeping; null unless options.serving.enabled.
  std::unique_ptr<ServingStage> serving;
};

}  // namespace

Result<std::vector<PolicyResult>> RunAvailabilityExperiment(
    const ExperimentSpec& spec,
    std::vector<std::unique_ptr<ConsistencyProtocol>> protocols) {
  if (spec.topology == nullptr) {
    return Status::InvalidArgument("experiment needs a topology");
  }
  if (protocols.empty()) {
    return Status::InvalidArgument("experiment needs at least one protocol");
  }
  if (spec.options.num_batches < 1 || spec.options.batch_length <= 0.0 ||
      spec.options.warmup < 0.0) {
    return Status::InvalidArgument("bad measurement window");
  }

  Simulator sim;
  NetworkState net(spec.topology);
  if (spec.obs != nullptr) {
    sim.set_obs(spec.obs);
    net.set_obs(spec.obs);
  }

  auto model_result = NetworkProcessModel::Make(
      &sim, &net, spec.profiles, spec.repeater_profiles, spec.options.seed);
  if (!model_result.ok()) return model_result.status();
  std::unique_ptr<NetworkProcessModel> model = model_result.MoveValue();

  // The workload: the paper's closed-loop single accessor, or — when the
  // serving model is enabled — open-loop Poisson arrivals per replica
  // (the closed-loop process is then not created at all, so accesses
  // originate solely from the arrival streams).
  std::unique_ptr<AccessProcess> access;
  std::unique_ptr<OpenLoopProcess> open_loop;
  const bool serving = spec.options.serving.enabled;
  // Arrivals target every replica any observed protocol placed — for the
  // paper configurations the protocols share one placement, so this is
  // simply that placement.
  SiteSet arrival_sites;
  for (const auto& p : protocols) {
    arrival_sites = arrival_sites.Union(p->placement());
  }
  if (serving) {
    auto open_result = OpenLoopProcess::Make(
        &sim, arrival_sites, spec.options.serving,
        spec.options.seed ^ 0x6C8E9CF570932BD5ULL);
    if (!open_result.ok()) return open_result.status();
    open_loop = open_result.MoveValue();
  } else {
    auto access_result =
        AccessProcess::Make(&sim, spec.options.access, spec.options.seed ^
                                                            0x5DEECE66DULL);
    if (!access_result.ok()) return access_result.status();
    access = access_result.MoveValue();
  }

  const SimTime start = spec.options.warmup;
  const SimTime horizon =
      start + spec.options.batch_length * spec.options.num_batches;

  std::vector<Observed> observed;
  observed.reserve(protocols.size());
  for (auto& p : protocols) {
    p->set_quorum_cache_enabled(spec.options.quorum_cache);
    if (spec.obs != nullptr) p->set_obs(spec.obs);
    observed.push_back(Observed{
        p.get(),
        AvailabilityTracker(start, spec.options.batch_length,
                            spec.options.num_batches),
        /*attempted=*/0, /*granted=*/0, /*dual_majority_instants=*/0,
        /*serving=*/nullptr});
    if (spec.obs != nullptr) {
      observed.back().tracker.set_obs(spec.obs, p->name());
    }
    if (serving) {
      // Queue slots are indexed by raw SiteId; RankMin() is the highest
      // id in the set (the paper ranks low ids high).
      observed.back().serving = std::make_unique<ServingStage>(
          p->name(), spec.options.serving, arrival_sites.RankMin() + 1);
    }
  }

  // Availability sampling shared by both event kinds. Each protocol's
  // grant decision is evaluated per group of communicating sites, which
  // also lets us assert the at-most-one-majority-partition invariant.
  auto sample = [&]() {
    const std::vector<SiteSet>& groups = net.Components();
    for (Observed& obs : observed) {
      int granted_groups = 0;
      for (const SiteSet& group : groups) {
        SiteSet copies = group.Intersect(obs.protocol->placement());
        if (copies.Empty()) continue;
        if (obs.protocol->CachedWouldGrant(net, copies.RankMax(),
                                           AccessType::kWrite)) {
          ++granted_groups;
        }
      }
      if (granted_groups > 1) {
        // Two disjoint groups are simultaneously granted. For the
        // partition-safe protocols this is a library bug and fatal; for
        // the topological variants it is a documented hazard of the
        // published algorithm (see DynamicVoting::partition_safe) that we
        // count and report.
        ++obs.dual_majority_instants;
        if (spec.options.check_mutual_exclusion &&
            obs.protocol->partition_safe()) {
          std::string detail = obs.protocol->name() + " at t=" +
                               std::to_string(sim.Now()) + " groups:";
          for (const SiteSet& group : groups) {
            detail += " " + group.ToString();
          }
          if (auto* dv = dynamic_cast<DynamicVoting*>(obs.protocol)) {
            for (SiteId s : dv->placement()) {
              detail += "\n  site " + std::to_string(s) + ": " +
                        dv->store().state(s).ToString();
            }
          }
          DYNVOTE_CHECK_MSG(granted_groups <= 1,
                            "two disjoint majority partitions: " + detail);
        }
      }
      obs.tracker.Update(sim.Now(), granted_groups > 0);
    }
  };

  model->set_on_change([&]() {
    for (Observed& obs : observed) {
      obs.protocol->OnNetworkEvent(net);
      if (obs.serving != nullptr) {
        // Connection-vector refresh traffic lands in the refresh phase;
        // everything counted between arrivals is background cost.
        obs.serving->AttributeMessages(*obs.protocol->counter(),
                                       ServingStage::Phase::kRefresh);
      }
    }
    sample();
  });

  if (access != nullptr) {
    access->set_callback([&](AccessType type) {
      for (Observed& obs : observed) {
        ++obs.attempted;
        Status st = obs.protocol->UserAccess(net, type);
        if (st.ok()) {
          ++obs.granted;
        } else {
          DYNVOTE_CHECK_MSG(st.IsNoQuorum(),
                            "unexpected access failure: " + st.ToString());
        }
      }
      sample();
    });
  }

  if (open_loop != nullptr) {
    open_loop->set_callback([&](SiteId origin, AccessType type) {
      const double now = sim.Now();
      const bool origin_up = net.IsSiteUp(origin);
      for (Observed& obs : observed) {
        ServingStage& stage = *obs.serving;
        if (!origin_up) {
          // The user's front-end replica is down: nothing to queue at.
          stage.OnRejected();
          continue;
        }
        ++obs.attempted;
        Status st = obs.protocol->UserAccess(net, type);
        if (st.ok()) {
          ++obs.granted;
        } else {
          DYNVOTE_CHECK_MSG(st.IsNoQuorum(),
                            "unexpected access failure: " + st.ToString());
        }
        const std::uint64_t msgs = stage.AttributeMessages(
            *obs.protocol->counter(), ServingStage::Phase::kAccess);
        ServingStage::Outcome outcome =
            stage.OnArrival(now, origin, msgs, st.ok());
        if (spec.obs != nullptr && spec.obs->sink != nullptr) {
          TraceEvent event;
          event.type = TraceEventType::kServing;
          event.t = spec.obs->now;
          event.replication = spec.obs->replication;
          event.seq = spec.obs->seq;
          event.protocol = obs.protocol->name();
          event.write = type == AccessType::kWrite;
          event.origin = origin;
          event.granted = st.ok();
          event.latency_ms = outcome.latency_ms;
          event.msgs = static_cast<std::uint32_t>(msgs);
          event.depth = outcome.depth;
          spec.obs->sink->Write(event);
        }
      }
      sample();
    });
  }

  model->Start();
  if (access != nullptr) access->Start();
  if (open_loop != nullptr) open_loop->Start();
  DYNVOTE_RETURN_NOT_OK(sim.RunUntil(horizon));

  std::vector<PolicyResult> results;
  results.reserve(observed.size());
  for (Observed& obs : observed) {
    obs.tracker.Finish(horizon);
    PolicyResult r;
    r.name = obs.protocol->name();
    r.unavailability = obs.tracker.Unavailability();
    r.stats = obs.tracker.Stats();
    r.mean_unavailable_duration = obs.tracker.MeanUnavailableDuration();
    r.num_unavailable_periods = obs.tracker.NumUnavailablePeriods();
    r.accesses_attempted = obs.attempted;
    r.accesses_granted = obs.granted;
    r.messages = *obs.protocol->counter();
    r.measured_time = obs.tracker.TotalTime();
    r.dual_majority_instants = obs.dual_majority_instants;
    r.time_to_first_outage = obs.tracker.TimeToFirstOutage();
    if (obs.serving != nullptr && spec.obs != nullptr) {
      obs.serving->Finish(spec.obs->metrics);
    }
    results.push_back(std::move(r));
  }
  return results;
}

Result<std::vector<PolicyResult>> RunPaperExperiment(
    char config_label, const std::vector<std::string>& policies,
    const ExperimentOptions& options) {
  auto network = MakePaperNetwork();
  if (!network.ok()) return network.status();

  const PaperConfiguration* config = nullptr;
  for (const PaperConfiguration& c : PaperConfigurations()) {
    if (c.label == config_label) config = &c;
  }
  if (config == nullptr) {
    return Status::InvalidArgument(std::string("unknown configuration '") +
                                   config_label + "'");
  }

  std::vector<std::unique_ptr<ConsistencyProtocol>> protocols;
  for (const std::string& name : policies) {
    auto p = MakeProtocolByName(name, network->topology, config->placement);
    if (!p.ok()) return p.status();
    protocols.push_back(p.MoveValue());
  }

  ExperimentSpec spec;
  spec.topology = network->topology;
  spec.profiles = network->profiles;
  spec.options = options;
  return RunAvailabilityExperiment(spec, std::move(protocols));
}

}  // namespace dynvote
