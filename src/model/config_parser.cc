#include "model/config_parser.h"

#include <fstream>
#include <map>
#include <sstream>

namespace dynvote {

namespace {

Status LineError(int line, const std::string& message) {
  return Status::InvalidArgument("network config line " +
                                 std::to_string(line) + ": " + message);
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::string cleaned = line.substr(0, line.find('#'));
  std::istringstream ss(cleaned);
  std::vector<std::string> tokens;
  std::string token;
  while (ss >> token) tokens.push_back(token);
  return tokens;
}

/// Parses trailing key=value tokens into a map; fails on malformed or
/// duplicate keys.
Result<std::map<std::string, double>> ParseKeyValues(
    int line, const std::vector<std::string>& tokens, std::size_t first) {
  std::map<std::string, double> out;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == tokens[i].size()) {
      return LineError(line, "expected key=value, got '" + tokens[i] + "'");
    }
    std::string key = tokens[i].substr(0, eq);
    double value = 0.0;
    try {
      std::size_t used = 0;
      value = std::stod(tokens[i].substr(eq + 1), &used);
      if (used != tokens[i].size() - eq - 1) {
        return LineError(line, "bad number in '" + tokens[i] + "'");
      }
    } catch (const std::exception&) {
      return LineError(line, "bad number in '" + tokens[i] + "'");
    }
    if (!out.emplace(key, value).second) {
      return LineError(line, "duplicate key '" + key + "'");
    }
  }
  return out;
}

double Take(std::map<std::string, double>* kv, const std::string& key,
            double fallback) {
  auto it = kv->find(key);
  if (it == kv->end()) return fallback;
  double v = it->second;
  kv->erase(it);
  return v;
}

Status CheckEmpty(int line, const std::map<std::string, double>& kv) {
  if (kv.empty()) return Status::OK();
  return LineError(line, "unknown key '" + kv.begin()->first + "'");
}

/// Converts a parsed value to a non-negative integer; counts must be
/// whole numbers (stod accepts "1.5" and "1e3", so check the value, not
/// the spelling).
Result<int> TakeCount(int line, std::map<std::string, double>* kv,
                      const std::string& key, int fallback) {
  double v = Take(kv, key, static_cast<double>(fallback));
  if (v < 0.0 || v > 1e9 || v != static_cast<double>(static_cast<int>(v))) {
    return LineError(line, key + " must be a small non-negative integer");
  }
  return static_cast<int>(v);
}

}  // namespace

Result<NetworkConfig> ParseNetworkConfig(const std::string& text) {
  TopologyBuilder builder = Topology::Builder();
  std::map<std::string, SegmentId> segments;
  std::map<std::string, SiteId> sites;
  std::vector<SiteProfile> profiles;
  std::vector<RepeaterProfile> repeater_profiles;
  // Gateways reference sites, which users may declare in any order;
  // collect and apply at the end.
  std::vector<std::pair<int, std::pair<std::string, std::string>>> gateways;

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  int replications = 1;
  int jobs = 1;
  bool saw_experiment = false;
  while (std::getline(stream, line)) {
    ++line_number;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kind = tokens[0];

    if (kind == "segment") {
      if (tokens.size() != 2) {
        return LineError(line_number, "segment takes exactly one name");
      }
      if (segments.count(tokens[1]) != 0) {
        return LineError(line_number,
                         "duplicate segment '" + tokens[1] + "'");
      }
      segments[tokens[1]] = builder.AddSegment(tokens[1]);
    } else if (kind == "site") {
      if (tokens.size() < 3) {
        return LineError(line_number, "site needs a name and a segment");
      }
      if (sites.count(tokens[1]) != 0) {
        return LineError(line_number, "duplicate site '" + tokens[1] + "'");
      }
      auto seg = segments.find(tokens[2]);
      if (seg == segments.end()) {
        return LineError(line_number,
                         "unknown segment '" + tokens[2] + "'");
      }
      auto kv = ParseKeyValues(line_number, tokens, 3);
      if (!kv.ok()) return kv.status();
      SiteProfile profile;
      profile.name = tokens[1];
      profile.mttf_days = Take(&*kv, "mttf", 365.0);
      profile.hardware_fraction = Take(&*kv, "hw", 0.5);
      profile.restart_minutes = Take(&*kv, "restart", 15.0);
      profile.hw_repair_const_hours = Take(&*kv, "repair-const", 0.0);
      profile.hw_repair_exp_hours = Take(&*kv, "repair-exp", 2.0);
      profile.maintenance_interval_days = Take(&*kv, "maint-interval", 0.0);
      profile.maintenance_hours = Take(&*kv, "maint-hours", 0.0);
      DYNVOTE_RETURN_NOT_OK(CheckEmpty(line_number, *kv));
      if (profile.mttf_days <= 0.0) {
        return LineError(line_number, "mttf must be > 0");
      }
      if (profile.hardware_fraction < 0.0 ||
          profile.hardware_fraction > 1.0) {
        return LineError(line_number, "hw must be in [0, 1]");
      }
      sites[tokens[1]] = builder.AddSite(tokens[1], seg->second);
      profiles.push_back(std::move(profile));
    } else if (kind == "gateway") {
      if (tokens.size() != 3) {
        return LineError(line_number, "gateway takes a site and a segment");
      }
      gateways.push_back({line_number, {tokens[1], tokens[2]}});
    } else if (kind == "repeater") {
      if (tokens.size() < 4) {
        return LineError(line_number,
                         "repeater needs a name and two segments");
      }
      auto a = segments.find(tokens[2]);
      auto b = segments.find(tokens[3]);
      if (a == segments.end() || b == segments.end()) {
        return LineError(line_number, "unknown segment in repeater");
      }
      auto kv = ParseKeyValues(line_number, tokens, 4);
      if (!kv.ok()) return kv.status();
      RepeaterProfile profile;
      profile.name = tokens[1];
      profile.mttf_days = Take(&*kv, "mttf", 365.0);
      profile.repair_const_hours = Take(&*kv, "repair-const", 0.0);
      profile.repair_exp_hours = Take(&*kv, "repair-exp", 2.0);
      DYNVOTE_RETURN_NOT_OK(CheckEmpty(line_number, *kv));
      if (profile.mttf_days <= 0.0) {
        return LineError(line_number, "mttf must be > 0");
      }
      builder.AddRepeater(tokens[1], a->second, b->second);
      repeater_profiles.push_back(std::move(profile));
    } else if (kind == "experiment") {
      if (saw_experiment) {
        return LineError(line_number, "duplicate experiment declaration");
      }
      saw_experiment = true;
      auto kv = ParseKeyValues(line_number, tokens, 1);
      if (!kv.ok()) return kv.status();
      DYNVOTE_ASSIGN_OR_RETURN(
          replications, TakeCount(line_number, &*kv, "replications", 1));
      DYNVOTE_ASSIGN_OR_RETURN(jobs,
                               TakeCount(line_number, &*kv, "jobs", 1));
      DYNVOTE_RETURN_NOT_OK(CheckEmpty(line_number, *kv));
      if (replications < 1) {
        return LineError(line_number, "replications must be >= 1");
      }
    } else {
      return LineError(line_number, "unknown declaration '" + kind + "'");
    }
  }

  for (const auto& [gw_line, gw] : gateways) {
    auto site = sites.find(gw.first);
    if (site == sites.end()) {
      return LineError(gw_line, "unknown site '" + gw.first + "'");
    }
    auto seg = segments.find(gw.second);
    if (seg == segments.end()) {
      return LineError(gw_line, "unknown segment '" + gw.second + "'");
    }
    builder.AddGateway(site->second, seg->second);
  }

  auto topo = builder.Build();
  if (!topo.ok()) return topo.status();
  NetworkConfig config;
  config.topology = topo.MoveValue();
  config.profiles = std::move(profiles);
  config.repeater_profiles = std::move(repeater_profiles);
  config.replications = replications;
  config.jobs = jobs;
  return config;
}

Result<NetworkConfig> LoadNetworkConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot read '" + path + "'");
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseNetworkConfig(buffer.str());
}

std::string NetworkConfigToString(const NetworkConfig& config) {
  std::ostringstream os;
  const Topology& topo = *config.topology;
  for (SegmentId seg = 0; seg < topo.num_segments(); ++seg) {
    os << "segment " << topo.segment_name(seg) << "\n";
  }
  for (SiteId s = 0; s < topo.num_sites(); ++s) {
    const SiteProfile& p = config.profiles[s];
    os << "site " << topo.site(s).name << " "
       << topo.segment_name(topo.SegmentOf(s)) << " mttf=" << p.mttf_days
       << " hw=" << p.hardware_fraction << " restart=" << p.restart_minutes
       << " repair-const=" << p.hw_repair_const_hours
       << " repair-exp=" << p.hw_repair_exp_hours;
    if (p.maintenance_interval_days > 0.0) {
      os << " maint-interval=" << p.maintenance_interval_days
         << " maint-hours=" << p.maintenance_hours;
    }
    os << "\n";
  }
  for (const BridgeInfo& bridge : topo.bridges()) {
    if (bridge.gateway_site.has_value()) {
      os << "gateway " << topo.site(*bridge.gateway_site).name << " "
         << topo.segment_name(bridge.segment_b) << "\n";
    } else {
      const RepeaterProfile& p = config.repeater_profiles[bridge.repeater];
      os << "repeater " << bridge.name << " "
         << topo.segment_name(bridge.segment_a) << " "
         << topo.segment_name(bridge.segment_b) << " mttf=" << p.mttf_days
         << " repair-const=" << p.repair_const_hours
         << " repair-exp=" << p.repair_exp_hours << "\n";
    }
  }
  // Emitted only away from the defaults so pre-existing configs
  // round-trip byte for byte.
  if (config.replications != 1 || config.jobs != 1) {
    os << "experiment replications=" << config.replications
       << " jobs=" << config.jobs << "\n";
  }
  return os.str();
}

}  // namespace dynvote
