#include "model/open_loop.h"

#include <algorithm>

namespace dynvote {

Result<std::unique_ptr<OpenLoopProcess>> OpenLoopProcess::Make(
    Simulator* sim, SiteSet arrival_sites, const ServingOptions& options,
    std::uint64_t seed) {
  if (sim == nullptr) {
    return Status::InvalidArgument("simulator must not be null");
  }
  if (arrival_sites.Empty()) {
    return Status::InvalidArgument("open-loop traffic needs arrival sites");
  }
  if (options.arrival_rate_per_day <= 0.0) {
    return Status::InvalidArgument("arrival rate must be > 0");
  }
  if (options.service_time_ms < 0.0 || options.msg_cost_ms < 0.0) {
    return Status::InvalidArgument("service costs must be >= 0");
  }
  if (options.write_fraction < 0.0 || options.write_fraction > 1.0) {
    return Status::InvalidArgument("write fraction outside [0, 1]");
  }
  return std::unique_ptr<OpenLoopProcess>(
      new OpenLoopProcess(sim, options, seed, arrival_sites));
}

OpenLoopProcess::OpenLoopProcess(Simulator* sim,
                                 const ServingOptions& options,
                                 std::uint64_t seed, SiteSet arrival_sites)
    : sim_(sim), options_(options) {
  // One generator per stream, expanded from the seed in site order: the
  // draws a site sees depend only on the seed and the site set, never on
  // how the streams interleave in the event queue.
  SplitMix64 mix(seed);
  streams_.reserve(static_cast<std::size_t>(arrival_sites.Size()));
  for (SiteId site : arrival_sites) {
    streams_.push_back(SiteStream{site, Rng(mix.Next())});
  }
  per_site_rate_ =
      options_.arrival_rate_per_day / static_cast<double>(streams_.size());
}

void OpenLoopProcess::Start() {
  for (std::size_t i = 0; i < streams_.size(); ++i) ScheduleNext(i);
}

void OpenLoopProcess::ScheduleNext(std::size_t stream_index) {
  double gap =
      streams_[stream_index].rng.NextExponential(1.0 / per_site_rate_);
  sim_->ScheduleIn(gap, [this, stream_index](SimTime) {
    Fire(stream_index);
  });
}

void OpenLoopProcess::Fire(std::size_t stream_index) {
  SiteStream& stream = streams_[stream_index];
  ++total_;
  AccessType type = stream.rng.NextBernoulli(options_.write_fraction)
                        ? AccessType::kWrite
                        : AccessType::kRead;
  if (callback_) callback_(stream.site, type);
  ScheduleNext(stream_index);
}

ServingStage::ServingStage(std::string protocol_name,
                           const ServingOptions& options, int num_sites)
    : name_(std::move(protocol_name)),
      options_(options),
      busy_until_(static_cast<std::size_t>(num_sites), 0.0),
      in_flight_(static_cast<std::size_t>(num_sites)) {}

std::uint64_t ServingStage::AttributeMessages(const MessageCounter& counter,
                                              Phase phase) {
  std::uint64_t control_delta = 0;
  auto* bucket = phase_msgs_[static_cast<int>(phase)];
  for (int k = 0; k < kNumMessageKinds; ++k) {
    auto kind = static_cast<MessageKind>(k);
    std::uint64_t delta = counter.count(kind) - prev_.count(kind);
    if (delta == 0) continue;
    bucket[k] += delta;
    prev_.Add(kind, delta);
    if (kind != MessageKind::kFileCopy) control_delta += delta;
  }
  return control_delta;
}

ServingStage::Outcome ServingStage::OnArrival(double now_days, SiteId origin,
                                              std::uint64_t msgs,
                                              bool granted) {
  auto slot = static_cast<std::size_t>(origin);
  std::deque<double>& pending = in_flight_[slot];
  // Everything that completed before this arrival has left the replica;
  // the survivors are the queue this request joins behind.
  while (!pending.empty() && pending.front() <= now_days) {
    pending.pop_front();
  }
  auto depth = static_cast<std::uint32_t>(pending.size());

  const double service_days =
      (options_.service_time_ms +
       options_.msg_cost_ms * static_cast<double>(msgs)) /
      kMillisPerDay;
  // Lindley recursion: service starts when the server frees up.
  const double start = std::max(now_days, busy_until_[slot]);
  const double completion = start + service_days;
  busy_until_[slot] = completion;
  pending.push_back(completion);

  Outcome outcome;
  outcome.latency_ms = (completion - now_days) * kMillisPerDay;
  outcome.depth = depth;
  latency_ms_.Observe(outcome.latency_ms);
  ++arrivals_;
  if (granted) ++granted_;
  if (depth > max_depth_) max_depth_ = depth;
  return outcome;
}

void ServingStage::Finish(MetricsShard* metrics) const {
  if (metrics == nullptr) return;
  const std::string label = "protocol=" + name_;
  metrics->Add(MetricKey("serving_arrivals", label), arrivals_ + rejected_);
  metrics->Add(MetricKey("serving_rejected", label), rejected_);
  metrics->Add(MetricKey("serving_granted", label), granted_);
  metrics->Add(MetricKey("serving_denied", label), arrivals_ - granted_);
  metrics->MergeHistogram(MetricKey("serving_latency_ms", label),
                          latency_ms_);
  metrics->Set(MetricKey("serving_queue_depth_max", label),
               static_cast<double>(max_depth_));
  // Message-cost accounting by kind and phase; zero cells stay absent so
  // the export lists only traffic the protocol actually generated.
  for (int phase = 0; phase < 2; ++phase) {
    const char* phase_name = phase == 0 ? "access" : "refresh";
    for (int k = 0; k < kNumMessageKinds; ++k) {
      if (phase_msgs_[phase][k] == 0) continue;
      std::string labels = "kind=" + MessageKindName(static_cast<MessageKind>(k));
      labels += ",phase=";
      labels += phase_name;
      labels += ",";
      labels += label;
      metrics->Add(MetricKey("serving_messages", labels),
                   phase_msgs_[phase][k]);
    }
  }
}

}  // namespace dynvote
