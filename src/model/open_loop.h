// The serving model (docs/serving.md): an open-loop traffic source and a
// per-replica queueing stage, layered over the availability experiment.
//
// The paper's workload is one closed-loop access per day — enough for
// Tables 2-3 but useless for judging a protocol as a serving system.
// OpenLoopProcess generates Poisson arrivals *per replica site* at a
// configurable aggregate rate (arrivals never wait for each other: an
// open loop, so queues can actually build), and ServingStage models each
// replica as a single FIFO server whose per-request service time grows
// with the protocol's control-message count for that access. The result
// is the measurement substrate behind `dynvote serve`: arrival-to-
// completion latency histograms, per-protocol message-cost accounting
// split into access and refresh phases, and queue-depth gauges, exported
// under the dynvote-serving-v1 schema.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "obs/metrics.h"
#include "repl/message_bus.h"
#include "sim/simulator.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/site_set.h"

namespace dynvote {

/// Serving-report schema identifier: the JSON emitted by `dynvote serve
/// --json` and bench/serving_latency carries this tag; bump on
/// incompatible field-set changes.
inline constexpr const char kServingSchema[] = "dynvote-serving-v1";

/// Milliseconds per simulated day — the bridge between SimTime (days)
/// and the millisecond-scale serving parameters.
inline constexpr double kMillisPerDay = 86400.0 * 1000.0;

/// Knobs of the serving model. Disabled by default: the availability
/// experiments are unchanged unless a caller opts in.
struct ServingOptions {
  /// Master switch; when false the experiment runs the paper's
  /// closed-loop AccessProcess exactly as before.
  bool enabled = false;
  /// Aggregate arrival rate over all replica sites, per simulated day.
  /// Split evenly across the replicas; each site draws an independent
  /// Poisson stream. Must be > 0 when enabled.
  double arrival_rate_per_day = 1000.0;
  /// Base service time of one request at a replica, milliseconds.
  double service_time_ms = 1.0;
  /// Additional service cost per control message the protocol sent for
  /// the access — the knob that turns message complexity into latency.
  double msg_cost_ms = 0.1;
  /// Fraction of arrivals that are writes; the remainder are reads.
  double write_fraction = 0.5;
};

/// Open-loop traffic source: one independent Poisson arrival stream per
/// replica site, all scheduled through the owning Simulator's event
/// queue. Streams are seeded from SplitMix64 expansions of one seed, so
/// a run is bit-reproducible and adding a protocol never perturbs the
/// arrival sequence (common random numbers across protocols).
class OpenLoopProcess {
 public:
  /// Invoked for each arrival: the replica site it arrived at and the
  /// access type drawn for it.
  using ArrivalCallback = std::function<void(SiteId, AccessType)>;

  /// Creates the process; fails on an empty site set, a non-positive
  /// rate, or a write fraction outside [0, 1].
  static Result<std::unique_ptr<OpenLoopProcess>> Make(
      Simulator* sim, SiteSet arrival_sites, const ServingOptions& options,
      std::uint64_t seed);

  OpenLoopProcess(const OpenLoopProcess&) = delete;
  OpenLoopProcess& operator=(const OpenLoopProcess&) = delete;

  void set_callback(ArrivalCallback callback) {
    callback_ = std::move(callback);
  }

  /// Schedules the first arrival of every stream. Call once.
  void Start();

  std::uint64_t total_arrivals() const { return total_; }

 private:
  /// One replica's arrival stream: its own generator, so the interleaving
  /// of sites in the event queue never changes which draw a site sees.
  struct SiteStream {
    SiteId site;
    Rng rng;
  };

  OpenLoopProcess(Simulator* sim, const ServingOptions& options,
                  std::uint64_t seed, SiteSet arrival_sites);

  void ScheduleNext(std::size_t stream_index);
  void Fire(std::size_t stream_index);

  Simulator* sim_;
  ServingOptions options_;
  double per_site_rate_;
  std::vector<SiteStream> streams_;
  ArrivalCallback callback_;
  std::uint64_t total_ = 0;
};

/// Per-protocol serving bookkeeping: a single-server FIFO queue per
/// replica (Lindley recursion — no completion events enter the
/// simulator, so the serving stage never perturbs the sample path the
/// availability experiment measures), a latency histogram, and message
/// accounting split by phase. Accumulates into plain members and flushes
/// once via Finish(), keeping the per-arrival cost to a few stores.
class ServingStage {
 public:
  /// Which activity a counter movement belongs to: work done serving an
  /// access, or background refresh traffic (the connection-vector
  /// protocols' OnNetworkEvent state exchanges).
  enum class Phase { kAccess, kRefresh };

  /// What one arrival experienced, for trace emission.
  struct Outcome {
    double latency_ms = 0.0;
    std::uint32_t depth = 0;
  };

  ServingStage(std::string protocol_name, const ServingOptions& options,
               int num_sites);

  /// Attributes the movement of `counter` since the previous call to
  /// `phase` and returns the *control*-message delta (file copies are
  /// data plane, not per-access overhead). Call after every protocol
  /// operation that may have sent messages.
  std::uint64_t AttributeMessages(const MessageCounter& counter, Phase phase);

  /// Runs one arrival through the origin replica's queue: service time
  /// is the base cost plus msg_cost_ms per control message this access
  /// sent; latency is arrival-to-completion (wait + service).
  Outcome OnArrival(double now_days, SiteId origin, std::uint64_t msgs,
                    bool granted);

  /// Records an arrival whose origin replica was down — no queue to
  /// join, counted separately instead of observed as latency.
  void OnRejected() { ++rejected_; }

  std::uint64_t arrivals() const { return arrivals_ + rejected_; }
  std::uint64_t served() const { return arrivals_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t granted() const { return granted_; }
  const HistogramData& latency_ms() const { return latency_ms_; }

  /// Flushes the accumulated counters, the latency histogram and the
  /// queue-depth gauge into `metrics` under serving_* keys (see
  /// docs/serving.md for the table). No-op on null.
  void Finish(MetricsShard* metrics) const;

 private:
  std::string name_;
  ServingOptions options_;
  /// Lindley recursion state: when each replica's server frees up.
  std::vector<double> busy_until_;
  /// Outstanding completion instants per replica, pruned at each
  /// arrival; the survivors are the queue depth the arrival observed.
  std::vector<std::deque<double>> in_flight_;
  MessageCounter prev_;
  std::uint64_t phase_msgs_[2][kNumMessageKinds] = {};
  HistogramData latency_ms_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t granted_ = 0;
  std::uint32_t max_depth_ = 0;
};

}  // namespace dynvote
