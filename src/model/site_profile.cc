#include "model/site_profile.h"

#include <map>

namespace dynvote {

double SiteProfile::MeanRepairDays() const {
  double hw_days = Hours(hw_repair_const_hours + hw_repair_exp_hours);
  double sw_days = Minutes(restart_minutes);
  return hardware_fraction * hw_days + (1.0 - hardware_fraction) * sw_days;
}

Result<PaperNetwork> MakePaperNetwork() {
  auto builder = Topology::Builder();
  SegmentId main_seg = builder.AddSegment("main");
  SegmentId second = builder.AddSegment("second");
  SegmentId third = builder.AddSegment("third");

  // Paper sites 1-5 on the main segment (ids 0-4); site 4 (wizard, id 3)
  // gateways to the second segment, site 5 (amos, id 4) to the third.
  SiteId csvax = builder.AddSite("csvax", main_seg);      // paper site 1
  builder.AddSite("beowulf", main_seg);                   // paper site 2
  builder.AddSite("grendel", main_seg);                   // paper site 3
  SiteId wizard = builder.AddSite("wizard", main_seg);    // paper site 4
  SiteId amos = builder.AddSite("amos", main_seg);        // paper site 5
  builder.AddSite("gremlin", second);                     // paper site 6
  builder.AddSite("rip", third);                          // paper site 7
  builder.AddSite("mangle", third);                       // paper site 8
  (void)csvax;
  builder.AddGateway(wizard, second);
  builder.AddGateway(amos, third);

  auto topo = builder.Build();
  if (!topo.ok()) return topo.status();

  // Table 1, in order. Maintenance: paper sites 1, 3 and 5 are down for
  // 3 hours every 90 days.
  std::vector<SiteProfile> profiles = {
      {"csvax", 36.5, 0.10, 20.0, 0.0, 2.0, 90.0, 3.0},
      {"beowulf", 10.0, 0.10, 15.0, 4.0, 24.0, 0.0, 0.0},
      {"grendel", 365.0, 0.90, 10.0, 0.0, 2.0, 90.0, 3.0},
      {"wizard", 50.0, 0.50, 15.0, 168.0, 168.0, 0.0, 0.0},
      {"amos", 365.0, 0.90, 10.0, 0.0, 2.0, 90.0, 3.0},
      {"gremlin", 50.0, 0.50, 15.0, 168.0, 168.0, 0.0, 0.0},
      {"rip", 50.0, 0.50, 15.0, 168.0, 168.0, 0.0, 0.0},
      {"mangle", 50.0, 0.50, 15.0, 168.0, 168.0, 0.0, 0.0},
  };

  return PaperNetwork{topo.MoveValue(), std::move(profiles)};
}

const std::vector<PaperConfiguration>& PaperConfigurations() {
  // Paper site numbers are one-based; ids are zero-based.
  static const std::vector<PaperConfiguration> configs = {
      {'A', SiteSet{0, 1, 3}, "1, 2, 4"},
      {'B', SiteSet{0, 1, 5}, "1, 2, 6"},
      {'C', SiteSet{0, 5, 7}, "1, 6, 8"},
      {'D', SiteSet{5, 6, 7}, "6, 7, 8"},
      {'E', SiteSet{0, 1, 2, 3}, "1, 2, 3, 4"},
      {'F', SiteSet{0, 1, 3, 5}, "1, 2, 4, 6"},
      {'G', SiteSet{0, 1, 5, 7}, "1, 2, 6, 8"},
      {'H', SiteSet{0, 1, 6, 7}, "1, 2, 7, 8"},
  };
  return configs;
}

namespace {

struct TableKey {
  char config;
  std::string policy;
  bool operator<(const TableKey& other) const {
    if (config != other.config) return config < other.config;
    return policy < other.policy;
  }
};

const std::map<TableKey, double>& Table2() {
  static const std::map<TableKey, double> values = {
      {{'A', "MCV"}, 0.002130},  {{'A', "DV"}, 0.004348},
      {{'A', "LDV"}, 0.000668},  {{'A', "ODV"}, 0.000849},
      {{'A', "TDV"}, 0.000015},  {{'A', "OTDV"}, 0.000013},
      {{'B', "MCV"}, 0.003871},  {{'B', "DV"}, 0.008281},
      {{'B', "LDV"}, 0.001214},  {{'B', "ODV"}, 0.001432},
      {{'B', "TDV"}, 0.000109},  {{'B', "OTDV"}, 0.000066},
      {{'C', "MCV"}, 0.031127},  {{'C', "DV"}, 0.056428},
      {{'C', "LDV"}, 0.001707},  {{'C', "ODV"}, 0.003492},
      {{'C', "TDV"}, 0.001707},  {{'C', "OTDV"}, 0.003492},
      {{'D', "MCV"}, 0.069342},  {{'D', "DV"}, 0.117683},
      {{'D', "LDV"}, 0.053592},  {{'D', "ODV"}, 0.053357},
      {{'D', "TDV"}, 0.034490},  {{'D', "OTDV"}, 0.031548},
      {{'E', "MCV"}, 0.000608},  {{'E', "DV"}, 0.000018},
      {{'E', "LDV"}, 0.000012},  {{'E', "ODV"}, 0.000084},
      {{'E', "TDV"}, 0.000000},  {{'E', "OTDV"}, 0.000000},
      {{'F', "MCV"}, 0.002761},  {{'F', "DV"}, 0.108034},
      {{'F', "LDV"}, 0.002154},  {{'F', "ODV"}, 0.000947},
      {{'F', "TDV"}, 0.000018},  {{'F', "OTDV"}, 0.000004},
      {{'G', "MCV"}, 0.002027},  {{'G', "DV"}, 0.001510},
      {{'G', "LDV"}, 0.000151},  {{'G', "ODV"}, 0.000339},
      {{'G', "TDV"}, 0.000041},  {{'G', "OTDV"}, 0.000036},
      {{'H', "MCV"}, 0.001408},  {{'H', "DV"}, 0.004275},
      {{'H', "LDV"}, 0.000171},  {{'H', "ODV"}, 0.000218},
      {{'H', "TDV"}, 0.000020},  {{'H', "OTDV"}, 0.000043},
  };
  return values;
}

const std::map<TableKey, double>& Table3() {
  static const std::map<TableKey, double> values = {
      {{'A', "MCV"}, 0.101968},  {{'A', "DV"}, 0.210651},
      {{'A', "LDV"}, 0.077353},  {{'A', "ODV"}, 0.084141},
      {{'A', "TDV"}, 0.10764},   {{'A', "OTDV"}, 0.05115},
      {{'B', "MCV"}, 0.101059},  {{'B', "DV"}, 0.217369},
      {{'B', "LDV"}, 0.078867},  {{'B', "ODV"}, 0.084387},
      {{'B', "TDV"}, 0.08650},   {{'B', "OTDV"}, 0.05337},
      {{'C', "MCV"}, 0.944336},  {{'C', "DV"}, 1.868895},
      {{'C', "LDV"}, 0.085960},  {{'C', "ODV"}, 0.173151},
      {{'C', "TDV"}, 0.085960},  {{'C', "OTDV"}, 0.173151},
      {{'D', "MCV"}, 3.000469},  {{'D', "DV"}, 5.850864},
      {{'D', "LDV"}, 7.443789},  {{'D', "ODV"}, 6.293645},
      {{'D', "TDV"}, 7.428305},  {{'D', "OTDV"}, 7.445393},
      {{'E', "MCV"}, 0.071134},  {{'E', "DV"}, 0.06363},
      {{'E', "LDV"}, 0.08102},   {{'E', "ODV"}, 0.05417},
      {{'E', "TDV"}, -1.0},      {{'E', "OTDV"}, -1.0},
      {{'F', "MCV"}, 0.102001},  {{'F', "DV"}, 5.962853},
      {{'F', "LDV"}, 0.275006},  {{'F', "ODV"}, 0.101756},
      {{'F', "TDV"}, 0.05556},   {{'F', "OTDV"}, 0.02252},
      {{'G', "MCV"}, 0.084714},  {{'G', "DV"}, 0.297879},
      {{'G', "LDV"}, 0.07787},   {{'G', "ODV"}, 0.073773},
      {{'G', "TDV"}, 0.12407},   {{'G', "OTDV"}, 0.04149},
      {{'H', "MCV"}, 0.078933},  {{'H', "DV"}, 0.142206},
      {{'H', "LDV"}, 0.135054},  {{'H', "ODV"}, 0.060009},
      {{'H', "TDV"}, 0.103171},  {{'H', "OTDV"}, 0.051964},
  };
  return values;
}

double Lookup(const std::map<TableKey, double>& table, char config,
              const std::string& policy) {
  auto it = table.find(TableKey{config, policy});
  return it == table.end() ? -1.0 : it->second;
}

}  // namespace

double PaperTable2Value(char config, const std::string& policy) {
  return Lookup(Table2(), config, policy);
}

double PaperTable3Value(char config, const std::string& policy) {
  return Lookup(Table3(), config, policy);
}

}  // namespace dynvote
