// Closed-form availability computations, used to cross-validate the
// simulator (the paper itself cross-checked simulations against Markov
// models built with MACSYMA; [PaBu86] is the Markov-chain study this
// module mirrors for the static cases).
//
// Static voting protocols are memoryless: whether an access succeeds
// depends only on the *current* up/down state of sites, so the exact
// steady-state availability is a sum over the 2^n up/down combinations of
// the relevant sites, weighting each combination by the product of
// per-site steady-state availabilities (sites fail independently in the
// paper's model). Dynamic protocols are path-dependent and have no such
// closed form — that is what the simulator is for.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/quorum.h"
#include "model/site_profile.h"
#include "net/network_state.h"
#include "net/topology.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {

/// Steady-state availability of one site under its profile: mean up time
/// over mean cycle time, with the maintenance duty cycle applied
/// (failures cannot occur during maintenance, which the small-downtime
/// approximation ignores at O(u^2)).
double SteadyStateAvailability(const SiteProfile& profile);

/// Steady-state unavailability (1 - SteadyStateAvailability).
double SteadyStateUnavailability(const SiteProfile& profile);

/// A predicate deciding whether the replicated file is accessible given
/// the set of live sites (connectivity is derived from the topology by
/// the evaluator, so the predicate receives the group structure).
using AccessPredicate =
    std::function<bool(const NetworkState& net)>;

/// Exact steady-state availability of a memoryless access rule: sums
/// P(state) * rule(state) over all 2^k up/down combinations of
/// `relevant_sites` (every other site is held up). `relevant_sites` must
/// have at most 20 members.
///
/// The rule must be *memoryless*: its answer may depend only on the
/// up/down state passed in, never on history. MCV qualifies; dynamic
/// voting does not.
Result<double> EnumerateAvailability(
    std::shared_ptr<const Topology> topology,
    const std::vector<SiteProfile>& profiles, SiteSet relevant_sites,
    const AccessPredicate& rule);

/// Exact steady-state availability of static majority voting (with the
/// lexicographic static tie rule iff `tie_break`) for copies at
/// `placement` on `topology`: some group of communicating live sites must
/// hold more than half the copies (or exactly half including the
/// highest-ranked copy). Enumerates placement plus all gateway sites.
Result<double> AnalyticMcvAvailability(
    std::shared_ptr<const Topology> topology,
    const std::vector<SiteProfile>& profiles, SiteSet placement,
    TieBreak tie_break = TieBreak::kLexicographic,
    const VoteWeights& weights = {});

}  // namespace dynvote
