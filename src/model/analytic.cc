#include "model/analytic.h"

namespace dynvote {

double SteadyStateAvailability(const SiteProfile& profile) {
  // Failure/repair renewal cycle: up for MTTF, down for the mean repair.
  double cycle_unavail =
      profile.MeanRepairDays() / (profile.mttf_days +
                                  profile.MeanRepairDays());
  // Maintenance duty cycle, independent of the failure process (to first
  // order: maintenance windows are short relative to the interval).
  double maint_unavail = 0.0;
  if (profile.maintenance_interval_days > 0.0) {
    maint_unavail =
        Hours(profile.maintenance_hours) / profile.maintenance_interval_days;
  }
  double availability = (1.0 - cycle_unavail) * (1.0 - maint_unavail);
  return availability;
}

double SteadyStateUnavailability(const SiteProfile& profile) {
  return 1.0 - SteadyStateAvailability(profile);
}

Result<double> EnumerateAvailability(
    std::shared_ptr<const Topology> topology,
    const std::vector<SiteProfile>& profiles, SiteSet relevant_sites,
    const AccessPredicate& rule) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (static_cast<int>(profiles.size()) != topology->num_sites()) {
    return Status::InvalidArgument("need one profile per site");
  }
  if (!relevant_sites.IsSubsetOf(topology->AllSites())) {
    return Status::InvalidArgument("relevant sites outside topology");
  }
  const int k = relevant_sites.Size();
  if (k > 20) {
    return Status::InvalidArgument(
        "enumeration limited to 20 relevant sites (2^20 states)");
  }
  if (rule == nullptr) {
    return Status::InvalidArgument("rule must not be null");
  }

  std::vector<SiteId> order(relevant_sites.begin(), relevant_sites.end());
  std::vector<double> availability(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    availability[i] = SteadyStateAvailability(profiles[order[i]]);
  }

  NetworkState net(topology);
  double total = 0.0;
  for (std::uint64_t combo = 0; combo < (std::uint64_t{1} << k); ++combo) {
    double prob = 1.0;
    net.AllUp();
    for (int i = 0; i < k; ++i) {
      bool up = (combo >> i) & 1;
      prob *= up ? availability[i] : 1.0 - availability[i];
      net.SetSiteUp(order[i], up);
    }
    if (prob == 0.0) continue;
    if (rule(net)) total += prob;
  }
  return total;
}

Result<double> AnalyticMcvAvailability(
    std::shared_ptr<const Topology> topology,
    const std::vector<SiteProfile>& profiles, SiteSet placement,
    TieBreak tie_break, const VoteWeights& weights) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (!weights.Covers(placement)) {
    return Status::InvalidArgument(
        "vote weight table does not cover the placement; pass one entry "
        "per site or use VoteWeights::MakePadded");
  }
  // The access decision depends on the copies and on every gateway host
  // that can partition them; repeater-bridged topologies would need
  // repeater enumeration too, which the paper's network does not have.
  SiteSet relevant = placement;
  for (const BridgeInfo& bridge : topology->bridges()) {
    if (bridge.gateway_site.has_value()) relevant.Add(*bridge.gateway_site);
  }

  long long total_weight = weights.WeightOf(placement);
  SiteId max_member = placement.RankMax();
  auto rule = [&](const NetworkState& net) {
    for (const SiteSet& group : net.Components()) {
      SiteSet copies = group.Intersect(placement);
      if (copies.Empty()) continue;
      long long votes = weights.WeightOf(copies);
      if (2 * votes > total_weight) return true;
      if (tie_break == TieBreak::kLexicographic &&
          2 * votes == total_weight && copies.Contains(max_member)) {
        return true;
      }
    }
    return false;
  };
  return EnumerateAvailability(std::move(topology), profiles, relevant,
                               rule);
}

}  // namespace dynvote
