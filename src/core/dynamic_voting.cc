#include "core/dynamic_voting.h"

#include "util/logging.h"

namespace dynvote {

namespace {

std::string DeriveName(const DynamicVotingOptions& options) {
  std::string name;
  if (options.optimistic) name += "O";
  if (options.topological) name += "T";
  name += options.tie_break == TieBreak::kLexicographic && !options.topological
              && !options.optimistic
              ? "LDV"
              : "DV";
  if (options.tie_break == TieBreak::kNone && name != "DV") {
    name += "(no-tie)";
  }
  if (!options.weights.IsUniform()) name = "W" + name;
  if (!options.witnesses.Empty()) name += "+wit";
  return name;
}

}  // namespace

Result<std::unique_ptr<DynamicVoting>> DynamicVoting::Make(
    std::shared_ptr<const Topology> topology, SiteSet placement,
    DynamicVotingOptions options) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (!placement.IsSubsetOf(topology->AllSites())) {
    return Status::InvalidArgument(
        "placement references sites outside the topology");
  }
  auto store = ReplicaStore::Make(placement);
  if (!store.ok()) return store.status();
  if (!options.witnesses.IsSubsetOf(placement)) {
    return Status::InvalidArgument("witnesses must be placement members");
  }
  if (placement.Minus(options.witnesses).Empty()) {
    return Status::InvalidArgument(
        "at least one placement member must hold data (non-witness)");
  }
  if (!options.weights.Covers(placement)) {
    return Status::InvalidArgument(
        "vote weight table does not cover the placement; pass one entry "
        "per site or use VoteWeights::MakePadded");
  }
  if (options.name.empty()) options.name = DeriveName(options);
  return std::unique_ptr<DynamicVoting>(new DynamicVoting(
      std::move(topology), store.MoveValue(), std::move(options)));
}

DynamicVoting::DynamicVoting(std::shared_ptr<const Topology> topology,
                             ReplicaStore store,
                             DynamicVotingOptions options)
    : topology_(std::move(topology)),
      store_(std::move(store)),
      options_(std::move(options)),
      name_(options_.name) {}

QuorumDecision DynamicVoting::Evaluate(SiteSet group) const {
  const bool memoize = quorum_cache_enabled();
  if (memoize && eval_cache_.valid &&
      eval_cache_.group_mask == group.mask() &&
      eval_cache_.epoch == store_.epoch()) {
    EmitCacheHit(group.mask(), AccessType::kWrite,
                 eval_cache_.decision.granted);
    return eval_cache_.decision;
  }
  QuorumDecision d = EvaluateDynamicQuorum(
      store_, group, options_.tie_break,
      options_.topological ? topology_.get() : nullptr, options_.weights);
  // With witnesses in play, a quorum is usable only if the current version
  // is held by a reachable *data* copy; witnesses can vote but cannot
  // supply the file contents.
  if (d.granted && !options_.witnesses.Empty() &&
      d.current_set.Intersect(data_copies()).Empty()) {
    d.granted = false;
    d.by_tie_break = false;
    d.witness_refused = true;
    d.reason = QuorumReason::kDeniedNoCurrentCopy;
  }
  EmitQuorumDecision(group.mask(), d);
  if (memoize) {
    eval_cache_.valid = true;
    eval_cache_.group_mask = group.mask();
    eval_cache_.epoch = store_.epoch();
    eval_cache_.decision = d;
  }
  return d;
}

bool DynamicVoting::WouldGrant(const NetworkState& net, SiteId origin,
                               AccessType /*type*/) const {
  if (!net.IsSiteUp(origin)) return false;
  return Evaluate(net.ComponentOf(origin)).granted;
}

Status DynamicVoting::Access(const NetworkState& net, SiteId origin,
                             AccessType type) {
  if (!net.IsSiteUp(origin)) {
    return Status::Unavailable("origin site is down");
  }
  SiteSet group = net.ComponentOf(origin);
  SiteSet reachable = store_.CopiesAmong(group);
  counter_.Add(MessageKind::kProbe, store_.placement().Size());
  counter_.Add(MessageKind::kProbeReply, reachable.Size());
  counter_.Add(MessageKind::kStateRequest, reachable.Size());
  counter_.Add(MessageKind::kStateReply, reachable.Size());

  QuorumDecision d = Evaluate(group);
  LogDecision(type == AccessType::kWrite ? DecisionRecord::Operation::kWrite
                                         : DecisionRecord::Operation::kRead,
              origin, d.granted, d);
  if (!d.granted) {
    counter_.Add(MessageKind::kAbort, reachable.Size());
    return Status::NoQuorum(name_ + ": " + d.ToString());
  }

  OpNumber op = store_.MaxOp(d.reachable_copies) + 1;
  VersionNumber version = store_.MaxVersion(d.reachable_copies);
  if (type == AccessType::kWrite) ++version;
  // COMMIT(S, o_m + 1, v_m [+1], S): the set of current sites becomes the
  // new partition set — the new majority block.
  store_.Commit(d.current_set, op, version, d.current_set);
  counter_.Add(MessageKind::kCommit, d.current_set.Size());

  CommitInfo info;
  info.kind = type == AccessType::kWrite ? CommitInfo::Kind::kWrite
                                         : CommitInfo::Kind::kRead;
  info.participants = d.current_set;
  // Witnesses never supply contents; pick a current data copy as source.
  info.source = d.current_set.Minus(options_.witnesses).Empty()
                    ? d.representative
                    : d.current_set.Minus(options_.witnesses).RankMax();
  info.version = version;
  NotifyCommit(info);
  return Status::OK();
}

Status DynamicVoting::Read(const NetworkState& net, SiteId origin) {
  return Access(net, origin, AccessType::kRead);
}

Status DynamicVoting::Write(const NetworkState& net, SiteId origin) {
  return Access(net, origin, AccessType::kWrite);
}

Status DynamicVoting::Recover(const NetworkState& net, SiteId site) {
  if (!store_.placement().Contains(site)) {
    return Status::InvalidArgument("recovering site holds no copy");
  }
  if (!net.IsSiteUp(site)) {
    return Status::Unavailable("recovering site is down");
  }
  SiteSet group = net.ComponentOf(site);
  QuorumDecision d = Evaluate(group);
  LogDecision(DecisionRecord::Operation::kRecover, site, d.granted, d);
  if (!d.granted) {
    counter_.Add(MessageKind::kAbort, d.reachable_copies.Size());
    if (d.witness_refused) {
      // The group holds the votes but every current copy is a witness: a
      // stale data copy here has no reachable data source to restore
      // from, so the recovery is refused rather than committed with an
      // unreadable file.
      return Status::NoQuorum(
          name_ + ": no reachable data source (current version held only "
                  "by witnesses)");
    }
    return Status::NoQuorum(name_ + ": recovery outside majority partition");
  }

  OpNumber op = store_.MaxOp(d.reachable_copies) + 1;
  VersionNumber version = store_.MaxVersion(d.reachable_copies);
  bool needs_copy = store_.state(site).version < version &&
                    !options_.witnesses.Contains(site);
  SiteSet data_sources = d.current_set.Minus(options_.witnesses);
  // "copy the file from site m" — witnesses have no data to copy, so the
  // transfer is counted exactly when one is delivered below. (A granted
  // decision implies a data copy in S — Evaluate refuses witness-only
  // quorums — but the counter must never drift from the delivery.)
  bool copies_file = needs_copy && !data_sources.Empty();
  if (copies_file) counter_.Add(MessageKind::kFileCopy, 1);
  SiteSet participants = d.current_set.Union(SiteSet{site});
  // COMMIT(S ∪ {l}, o_m + 1, v_m, S ∪ {l}).
  store_.Commit(participants, op, version, participants);
  counter_.Add(MessageKind::kCommit, participants.Size());

  if (copies_file) {
    CommitInfo info;
    info.kind = CommitInfo::Kind::kRecovery;
    info.participants = SiteSet{site};
    info.source = data_sources.RankMax();
    info.version = version;
    NotifyCommit(info);
  }
  return Status::OK();
}

void DynamicVoting::ReintegrateGroup(const NetworkState& net,
                                     SiteSet group) {
  SiteSet copies = store_.CopiesAmong(group);
  if (copies.Empty()) return;
  for (SiteId s : copies) {
    if (store_.state(s).op_number < store_.MaxOp(copies)) {
      Status st = Recover(net, s);
      DYNVOTE_CHECK_MSG(st.ok(),
                        "reintegration inside a granted group must succeed");
    }
  }
}

Status DynamicVoting::UserAccess(const NetworkState& net, AccessType type) {
  // Track the most informative denial across probed groups so a denied
  // access reports why the *closest* group failed, not the emptiest.
  QuorumReason denial = QuorumReason::kDeniedNoCopies;
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = store_.CopiesAmong(group);
    if (copies.Empty()) continue;
    QuorumDecision d = Evaluate(group);
    if (!d.granted) {
      if (DenialSeverity(d.reason) > DenialSeverity(denial)) {
        denial = d.reason;
      }
      continue;
    }
    Status st = Access(net, copies.RankMax(), type);
    if (st.ok()) {
      // Reachable stale copies rejoin now. For the optimistic protocols
      // the access is the only moment state is exchanged; for the
      // instantaneous ones OnNetworkEvent has already done this and the
      // loop finds nothing stale.
      ReintegrateGroup(net, group);
    }
    EmitUserAccessAs(type, st.ok(), copies.RankMax(),
                     st.ok() ? d.reason : denial);
    return st;
  }
  EmitUserAccessAs(type, false, -1, denial);
  return Status::NoQuorum(name_ +
                          ": no group of communicating sites holds a quorum");
}

void DynamicVoting::OnNetworkEvent(const NetworkState& net) {
  if (options_.optimistic) return;  // out-of-date state is the point
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = store_.CopiesAmong(group);
    if (copies.Empty()) continue;
    // The connection vector's monitoring traffic: every copy in the group
    // exchanges state.
    counter_.Add(MessageKind::kInstantRefresh, 2 * copies.Size());
    QuorumDecision d = Evaluate(group);
    LogDecision(DecisionRecord::Operation::kRefresh, -1, d.granted, d);
    if (!d.granted) continue;
    bool membership_current =
        d.current_set == d.prev_partition && copies == d.current_set;
    if (!membership_current) {
      // A state-update operation: the current sites commit the shrunken
      // (or re-grown) majority block, then stale copies reintegrate.
      OpNumber op = store_.MaxOp(d.reachable_copies) + 1;
      VersionNumber version = store_.MaxVersion(d.reachable_copies);
      store_.Commit(d.current_set, op, version, d.current_set);
      counter_.Add(MessageKind::kCommit, d.current_set.Size());
      ReintegrateGroup(net, group);
    }
  }
}

namespace {
Result<std::unique_ptr<DynamicVoting>> MakeNamed(
    std::shared_ptr<const Topology> topology, SiteSet placement,
    TieBreak tie_break, bool topological, bool optimistic) {
  DynamicVotingOptions options;
  options.tie_break = tie_break;
  options.topological = topological;
  options.optimistic = optimistic;
  return DynamicVoting::Make(std::move(topology), placement,
                             std::move(options));
}
}  // namespace

Result<std::unique_ptr<DynamicVoting>> MakeDV(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  return MakeNamed(std::move(topology), placement, TieBreak::kNone, false,
                   false);
}

Result<std::unique_ptr<DynamicVoting>> MakeLDV(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  return MakeNamed(std::move(topology), placement, TieBreak::kLexicographic,
                   false, false);
}

Result<std::unique_ptr<DynamicVoting>> MakeODV(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  return MakeNamed(std::move(topology), placement, TieBreak::kLexicographic,
                   false, true);
}

Result<std::unique_ptr<DynamicVoting>> MakeTDV(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  return MakeNamed(std::move(topology), placement, TieBreak::kLexicographic,
                   true, false);
}

Result<std::unique_ptr<DynamicVoting>> MakeOTDV(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  return MakeNamed(std::move(topology), placement, TieBreak::kLexicographic,
                   true, true);
}

}  // namespace dynvote
