// Available Copy (Bernstein & Goodman 1984; Long & Pâris 1987): the
// consistency protocol for networks that cannot partition, included as the
// baseline that Topological Dynamic Voting degenerates into when all
// copies share one segment (paper, Section 3).
//
// Semantics: writes go to every available copy; the file is accessible as
// long as at least one *current* copy is up. A copy that was down across a
// write is stale and reintegrates by copying from a current copy. After a
// total failure the file stays unavailable until a member of the last
// current set restarts.
//
// WARNING: Available Copy assumes the network cannot partition. On a
// partitionable topology two isolated groups may both hold current copies
// and both grant writes — partition_safe() returns false, and tests
// exercise this protocol only on single-segment placements.

#pragma once

#include <memory>
#include <string>

#include "core/protocol.h"
#include "repl/replica_store.h"
#include "util/result.h"

namespace dynvote {

/// The Available Copy protocol.
class AvailableCopy final : public ConsistencyProtocol {
 public:
  /// Creates the protocol for copies at `placement`.
  static Result<std::unique_ptr<AvailableCopy>> Make(SiteSet placement);

  const std::string& name() const override { return name_; }
  SiteSet placement() const override { return store_.placement(); }
  bool uses_instantaneous_information() const override { return true; }

  /// False: the protocol is only correct on non-partitionable networks.
  bool partition_safe() const override { return false; }

  bool WouldGrant(const NetworkState& net, SiteId origin,
                  AccessType type) const override;
  Status Read(const NetworkState& net, SiteId origin) override;
  Status Write(const NetworkState& net, SiteId origin) override;
  Status Recover(const NetworkState& net, SiteId site) override;
  void OnNetworkEvent(const NetworkState& net) override;
  void Reset() override;

  bool AppendStateSignature(std::string* out) const override {
    store_.AppendCanonicalSignature(out);
    out->push_back('c');
    *out += std::to_string(current_.mask());
    return true;
  }

  /// Sites currently known to hold the latest write (up or down).
  SiteSet current_set() const { return current_; }

  const ReplicaStore& store() const { return store_; }

 protected:
  /// AC grants are always "a current copy is reachable"; denials are
  /// "copies up, none current" or "no copies at all".
  QuorumReason ClassifyUserAccess(const NetworkState& net, AccessType type,
                                  bool granted,
                                  SiteId origin) const override;

 private:
  explicit AvailableCopy(ReplicaStore store);

  ReplicaStore store_;
  SiteSet current_;
  std::string name_ = "AC";
};

}  // namespace dynvote
