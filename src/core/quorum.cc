#include "core/quorum.h"

#include <sstream>

#include "util/logging.h"

namespace dynvote {

Result<VoteWeights> VoteWeights::Make(std::vector<int> weights) {
  for (int w : weights) {
    if (w < 0) return Status::InvalidArgument("vote weights must be >= 0");
  }
  return VoteWeights(std::move(weights));
}

Result<VoteWeights> VoteWeights::MakePadded(std::vector<int> weights,
                                            int num_sites) {
  if (num_sites < static_cast<int>(weights.size())) {
    return Status::InvalidArgument(
        "weight table longer than the site count it should pad to");
  }
  for (int w : weights) {
    if (w < 0) return Status::InvalidArgument("vote weights must be >= 0");
  }
  weights.resize(static_cast<std::size_t>(num_sites), 1);
  return VoteWeights(std::move(weights));
}

VoteWeights::VoteWeights(std::vector<int> weights)
    : weights_(std::move(weights)),
      covered_(SiteSet::FirstN(static_cast<int>(weights_.size()))) {
  for (int w : weights_) total_ += w;
}

int VoteWeights::WeightOf(SiteId site) const {
  if (weights_.empty()) return 1;
  DYNVOTE_CHECK_MSG(
      site >= 0 && site < static_cast<SiteId>(weights_.size()),
      "site " + std::to_string(site) + " has no entry in a " +
          std::to_string(weights_.size()) + "-entry vote weight table");
  return weights_[site];
}

long long VoteWeights::WeightOf(SiteSet sites) const {
  if (weights_.empty()) return sites.Size();  // popcount fast path
  DYNVOTE_CHECK_MSG(Covers(sites), "some site in " + sites.ToString() +
                                       " has no entry in the vote weight "
                                       "table");
  if (sites == covered_) return total_;
  long long total = 0;
  for (SiteId s : sites) total += weights_[s];
  return total;
}

long long VoteWeights::TotalWeight() const {
  DYNVOTE_CHECK_MSG(!weights_.empty(),
                    "TotalWeight of a uniform table is unbounded");
  return total_;
}

std::string QuorumDecision::ToString() const {
  std::ostringstream os;
  os << (granted ? "GRANTED" : "DENIED")
     << (by_tie_break ? " (tie-break)" : "")
     << (witness_refused ? " (witness-refused)" : "")
     << " R=" << reachable_copies
     << " Q=" << quorum_set << " S=" << current_set
     << " counted=" << counted_set << " Pm=" << prev_partition;
  return os.str();
}

QuorumDecision EvaluateDynamicQuorum(const ReplicaStore& store,
                                     SiteSet reachable, TieBreak tie_break,
                                     const Topology* topology,
                                     const VoteWeights& weights) {
  QuorumDecision d;
  d.reachable_copies = store.CopiesAmong(reachable);
  if (d.reachable_copies.Empty()) return d;

  d.quorum_set = store.MaxOpSites(d.reachable_copies);
  d.current_set = store.MaxVersionSites(d.reachable_copies);
  d.representative = d.quorum_set.RankMax();
  d.prev_partition = store.state(d.representative).partition_set;

  // Votes counted toward the majority test. The plain algorithms count Q;
  // the topological algorithms count T, Q's closure under "same segment
  // as a reachable member of the previous majority block".
  d.counted_set = d.quorum_set;
  if (topology != nullptr) {
    // T = Pm ∩ (union of the home segments of Pm's active members): a
    // reachable member of the previous block carries the votes of every
    // block member on its own segment. One mask union per active member
    // replaces the historical O(|Pm|·|active|) site-pair loop.
    SiteSet active_members = d.prev_partition.Intersect(d.reachable_copies);
    SiteSet active_segments;
    for (SiteId s : active_members) {
      active_segments = active_segments.Union(
          topology->SitesOnSegment(topology->SegmentOf(s)));
    }
    d.counted_set = d.prev_partition.Intersect(active_segments);
  }

  // |counted| > |Pm| / 2, with weighted votes: compare 2*w(counted) to
  // w(Pm) in integers to avoid fractional arithmetic.
  long long counted_weight = weights.WeightOf(d.counted_set);
  long long block_weight = weights.WeightOf(d.prev_partition);
  // Tie rule: exactly half the previous block grants iff the group holds
  // the maximum element of Pm. Per Figures 1-3 and 5-7 the element must
  // be in Q (reachable with the maximal operation number), even under the
  // topological rule. Evaluated lazily — the strict-majority fast path
  // never needs it.
  auto tie_wins = [&] {
    return tie_break == TieBreak::kLexicographic &&
           !d.prev_partition.Empty() &&
           d.quorum_set.Contains(d.prev_partition.RankMax());
  };
  if (2 * counted_weight > block_weight) {
    d.granted = true;
    d.reason = QuorumReason::kGrantedMajority;
  } else if (2 * counted_weight == block_weight) {
    if (tie_wins()) {
      d.granted = true;
      d.by_tie_break = true;
      d.reason = QuorumReason::kGrantedTieLex;
    } else {
      d.reason = QuorumReason::kDeniedTieLost;
    }
  } else {
    d.reason = QuorumReason::kDeniedMinority;
  }
  if (d.granted && d.counted_set != d.quorum_set) {
    // The carry was decisive iff counting Q alone (the tie condition
    // already depends only on Q) would have denied.
    long long q_weight = weights.WeightOf(d.quorum_set);
    bool q_only_granted = 2 * q_weight > block_weight ||
                          (2 * q_weight == block_weight && tie_wins());
    if (!q_only_granted) d.reason = QuorumReason::kGrantedTopologicalCarry;
  }
  return d;
}

bool HasStaticMajority(SiteSet reachable, SiteSet placement,
                       const VoteWeights& weights) {
  long long have = weights.WeightOf(reachable.Intersect(placement));
  long long total = weights.WeightOf(placement);
  return 2 * have > total;
}

}  // namespace dynvote
