// The dynamic voting family — the paper's primary contribution. One
// configurable implementation covers:
//
//   DV   — Davčev-Burkhard dynamic voting: instantaneous information, ties
//          fail (tie_break = kNone, optimistic = false).
//   LDV  — Jajodia's lexicographic dynamic voting: instantaneous
//          information, lexicographic tie-break.
//   ODV  — the paper's Optimistic Dynamic Voting: the LDV rule evaluated
//          over possibly out-of-date state; state is exchanged only at
//          access time (optimistic = true).
//   TDV  — Topological Dynamic Voting: instantaneous information plus
//          Section 3's vote-carrying over network segments.
//   OTDV — Optimistic Topological Dynamic Voting: both refinements.
//
// Extensions from the paper's future-work list: per-site vote weights and
// witness copies (sites that vote and store the (o, v, P) ensemble but no
// data; Pâris 1986).

#pragma once

#include <memory>
#include <string>

#include "core/protocol.h"
#include "core/quorum.h"
#include "net/topology.h"
#include "repl/replica_store.h"
#include "util/result.h"

namespace dynvote {

/// Configuration of a dynamic voting protocol.
struct DynamicVotingOptions {
  /// Tie resolution; kLexicographic for all of the paper's protocols
  /// except original DV.
  TieBreak tie_break = TieBreak::kLexicographic;
  /// Count votes with Section 3's topological closure (TDV/OTDV).
  bool topological = false;
  /// Operate on possibly out-of-date information: no state refresh on
  /// network events; state changes only at access/recovery time
  /// (ODV/OTDV).
  bool optimistic = false;
  /// Per-site vote weights; default one vote per copy.
  VoteWeights weights;
  /// Subset of the placement holding witnesses: copies of the state
  /// ensemble without the data. Witnesses vote, but the protocol refuses
  /// any access that cannot reach a current *data* copy.
  SiteSet witnesses;
  /// Display name; empty derives one from the flags (DV, LDV, ODV, ...).
  std::string name;
};

/// Dynamic voting over partition sets (Section 2.1 and Section 3).
class DynamicVoting final : public ConsistencyProtocol {
 public:
  /// Creates the protocol for copies at `placement` on `topology`.
  /// `topology` is required even for the non-topological variants: it
  /// defines the site universe (and Make() validates the placement
  /// against it).
  static Result<std::unique_ptr<DynamicVoting>> Make(
      std::shared_ptr<const Topology> topology, SiteSet placement,
      DynamicVotingOptions options = {});

  const std::string& name() const override { return name_; }
  SiteSet placement() const override { return store_.placement(); }
  bool uses_instantaneous_information() const override {
    return !options_.optimistic;
  }

  /// The plain variants (DV/LDV/ODV) guarantee at most one majority
  /// partition at any time. The topological variants, *as printed in the
  /// paper*, do not: a site that solo-advanced the lineage by carrying a
  /// down segment-mate's vote leaves the old block's other members with a
  /// stale partition set that can still muster a majority, forking the
  /// lineage (see tests/core/topological_unsoundness_test.cc for the
  /// minimal scenario, observed in the paper's own configuration D). The
  /// paper's consistency argument covers only concurrent claims of the
  /// same unavailable site. We reproduce the algorithm literally — the
  /// published availability numbers depend on these grants — and report
  /// the hazard instead of hiding it.
  bool partition_safe() const override { return !options_.topological; }

  bool WouldGrant(const NetworkState& net, SiteId origin,
                  AccessType type) const override;
  Status Read(const NetworkState& net, SiteId origin) override;
  Status Write(const NetworkState& net, SiteId origin) override;
  Status Recover(const NetworkState& net, SiteId site) override;

  /// The single-user access of the simulation model. After a granted
  /// access, reachable stale copies are reintegrated (for the optimistic
  /// variants this is their only opportunity; for the instantaneous ones
  /// it is a no-op because OnNetworkEvent already did it).
  Status UserAccess(const NetworkState& net, AccessType type) override;

  /// Instantaneous-information variants refresh replica state on every
  /// change of network status — the simulated connection vector.
  void OnNetworkEvent(const NetworkState& net) override;

  void Reset() override { store_.Reset(); }

  /// Decisions depend only on the store (options and topology are frozen
  /// at construction), so the store epoch is a complete invalidation key.
  std::uint64_t state_epoch() const override { return store_.epoch(); }

  /// For the same reason, the canonical store fingerprint is a complete
  /// state signature.
  bool AppendStateSignature(std::string* out) const override {
    store_.AppendCanonicalSignature(out);
    return true;
  }

  /// Runs the majority-partition test of Algorithm 1 for the given group
  /// of mutually communicating sites, against current replica state.
  /// Exposed for tests, benches and the KV store. Pure given (group,
  /// store epoch); the last decision is memoized because the access path
  /// evaluates the same group back to back (UserAccess pre-check, then
  /// Access; OnNetworkEvent, then the driver's availability sample).
  QuorumDecision Evaluate(SiteSet group) const;

  const ReplicaStore& store() const { return store_; }
  const DynamicVotingOptions& options() const { return options_; }
  const Topology& topology() const { return *topology_; }

  /// Data-holding copies: placement minus witnesses.
  SiteSet data_copies() const {
    return store_.placement().Minus(options_.witnesses);
  }
  SiteSet data_sites() const override { return data_copies(); }

 private:
  DynamicVoting(std::shared_ptr<const Topology> topology, ReplicaStore store,
                DynamicVotingOptions options);

  /// Performs a read or write at `origin` per Figures 1-2 / 5-6.
  Status Access(const NetworkState& net, SiteId origin, AccessType type);

  /// Reintegrates every reachable stale copy in `group` (Figure 3 / 7
  /// RECOVER, run back to back for all of them).
  void ReintegrateGroup(const NetworkState& net, SiteSet group);

  std::shared_ptr<const Topology> topology_;
  ReplicaStore store_;
  DynamicVotingOptions options_;
  std::string name_;

  // Single-slot Evaluate memo; see Evaluate(). Honors the
  // set_quorum_cache_enabled escape hatch.
  struct EvalCache {
    bool valid = false;
    std::uint64_t group_mask = 0;
    std::uint64_t epoch = 0;
    QuorumDecision decision;
  };
  mutable EvalCache eval_cache_;
};

/// Convenience factories for the five named protocols of the paper.
Result<std::unique_ptr<DynamicVoting>> MakeDV(
    std::shared_ptr<const Topology> topology, SiteSet placement);
Result<std::unique_ptr<DynamicVoting>> MakeLDV(
    std::shared_ptr<const Topology> topology, SiteSet placement);
Result<std::unique_ptr<DynamicVoting>> MakeODV(
    std::shared_ptr<const Topology> topology, SiteSet placement);
Result<std::unique_ptr<DynamicVoting>> MakeTDV(
    std::shared_ptr<const Topology> topology, SiteSet placement);
Result<std::unique_ptr<DynamicVoting>> MakeOTDV(
    std::shared_ptr<const Topology> topology, SiteSet placement);

}  // namespace dynvote
