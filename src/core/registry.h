// Name-based protocol construction, so benches, examples and tests can
// build any protocol from a string ("MCV", "DV", "LDV", "ODV", "TDV",
// "OTDV", "AC").

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "net/topology.h"
#include "util/result.h"

namespace dynvote {

/// Names accepted by MakeProtocolByName, in the paper's presentation
/// order (Table 2 columns), with "AC" appended.
const std::vector<std::string>& KnownProtocolNames();

/// The six policies of Table 2, in column order.
const std::vector<std::string>& PaperProtocolNames();

/// Builds the named protocol for copies at `placement` on `topology`.
Result<std::unique_ptr<ConsistencyProtocol>> MakeProtocolByName(
    const std::string& name, std::shared_ptr<const Topology> topology,
    SiteSet placement);

}  // namespace dynvote
