#include "core/jm_voting.h"

#include <algorithm>

#include "util/logging.h"

namespace dynvote {

Result<std::unique_ptr<JajodiaMutchlerVoting>> JajodiaMutchlerVoting::Make(
    std::shared_ptr<const Topology> topology, SiteSet placement) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (placement.Empty() || !placement.IsSubsetOf(topology->AllSites())) {
    return Status::InvalidArgument("placement invalid for this topology");
  }
  return std::unique_ptr<JajodiaMutchlerVoting>(
      new JajodiaMutchlerVoting(std::move(topology), placement));
}

JajodiaMutchlerVoting::JajodiaMutchlerVoting(
    std::shared_ptr<const Topology> topology, SiteSet placement)
    : topology_(std::move(topology)), placement_(placement) {
  Reset();
}

void JajodiaMutchlerVoting::Reset() {
  states_.assign(placement_.RankMin() + 1, JmReplicaState{});
  for (SiteId s : placement_) {
    states_[s] = JmReplicaState{1, placement_.Size(), 1};
  }
  ++epoch_;
}

const JmReplicaState& JajodiaMutchlerVoting::state(SiteId site) const {
  DYNVOTE_CHECK_MSG(placement_.Contains(site), "site holds no copy");
  return states_[site];
}

bool JajodiaMutchlerVoting::AppendStateSignature(std::string* out) const {
  // Update numbers and data versions are monotonic counters; only their
  // relative order matters to the majority test, so emit ranks (the
  // cardinality is an absolute quantity and is emitted raw).
  std::vector<std::int64_t> updates, versions;
  for (SiteId s : placement_) {
    updates.push_back(states_[s].update_number);
    versions.push_back(states_[s].data_version);
  }
  std::sort(updates.begin(), updates.end());
  updates.erase(std::unique(updates.begin(), updates.end()), updates.end());
  std::sort(versions.begin(), versions.end());
  versions.erase(std::unique(versions.begin(), versions.end()),
                 versions.end());
  auto rank = [](const std::vector<std::int64_t>& sorted,
                 std::int64_t value) {
    return static_cast<int>(
        std::lower_bound(sorted.begin(), sorted.end(), value) -
        sorted.begin());
  };
  for (SiteId s : placement_) {
    const JmReplicaState& st = states_[s];
    out->push_back('u');
    *out += std::to_string(rank(updates, st.update_number));
    out->push_back('d');
    *out += std::to_string(rank(versions, st.data_version));
    out->push_back('c');
    *out += std::to_string(st.last_cardinality);
    out->push_back(';');
  }
  return true;
}

JajodiaMutchlerVoting::Evaluation JajodiaMutchlerVoting::Evaluate(
    SiteSet group) const {
  Evaluation eval;
  eval.reachable = group.Intersect(placement_);
  if (eval.reachable.Empty()) return eval;
  for (SiteId s : eval.reachable) {
    eval.max_update = std::max(eval.max_update, states_[s].update_number);
  }
  for (SiteId s : eval.reachable) {
    if (states_[s].update_number == eval.max_update) eval.current.Add(s);
  }
  eval.cardinality = states_[eval.current.RankMax()].last_cardinality;
  // Strict majority of the recorded cardinality; no tie-break is
  // possible — the identity of a distinguished member is not stored.
  eval.granted = 2 * eval.current.Size() > eval.cardinality;
  return eval;
}

bool JajodiaMutchlerVoting::WouldGrant(const NetworkState& net,
                                       SiteId origin,
                                       AccessType /*type*/) const {
  if (!net.IsSiteUp(origin)) return false;
  return Evaluate(net.ComponentOf(origin)).granted;
}

void JajodiaMutchlerVoting::CommitGroup(const Evaluation& eval,
                                        bool is_write) {
  // All reachable copies are made current: stale members catch up as part
  // of the update, and the cardinality becomes the group size.
  std::int64_t version = 0;
  for (SiteId s : eval.current) {
    version = std::max(version, states_[s].data_version);
  }
  SiteId source = eval.current.RankMax();
  for (SiteId s : eval.reachable) {
    if (states_[s].data_version < version) {
      // Catching up is a real file copy: tell the data layer.
      counter_.Add(MessageKind::kFileCopy, 1);
      CommitInfo info;
      info.kind = CommitInfo::Kind::kRecovery;
      info.participants = SiteSet{s};
      info.source = source;
      info.version = version;
      NotifyCommit(info);
    }
  }
  if (is_write) ++version;
  for (SiteId s : eval.reachable) {
    states_[s].update_number = eval.max_update + 1;
    states_[s].last_cardinality = eval.reachable.Size();
    states_[s].data_version = version;
  }
  ++epoch_;
  counter_.Add(MessageKind::kCommit, eval.reachable.Size());
}

Status JajodiaMutchlerVoting::Access(const NetworkState& net, SiteId origin,
                                     AccessType type) {
  if (!net.IsSiteUp(origin)) {
    return Status::Unavailable("origin site is down");
  }
  SiteSet group = net.ComponentOf(origin);
  Evaluation eval = Evaluate(group);
  counter_.Add(MessageKind::kProbe, placement_.Size());
  counter_.Add(MessageKind::kProbeReply, eval.reachable.Size());
  counter_.Add(MessageKind::kStateRequest, eval.reachable.Size());
  counter_.Add(MessageKind::kStateReply, eval.reachable.Size());
  if (!eval.granted) {
    counter_.Add(MessageKind::kAbort, eval.reachable.Size());
    return Status::NoQuorum(name_ + ": current copies are not a majority "
                                    "of the last update's cardinality");
  }
  CommitGroup(eval, type == AccessType::kWrite);

  CommitInfo info;
  info.kind = type == AccessType::kWrite ? CommitInfo::Kind::kWrite
                                         : CommitInfo::Kind::kRead;
  info.participants = eval.reachable;
  info.source = eval.current.RankMax();
  info.version = states_[info.source].data_version;
  NotifyCommit(info);
  return Status::OK();
}

Status JajodiaMutchlerVoting::Read(const NetworkState& net, SiteId origin) {
  return Access(net, origin, AccessType::kRead);
}

Status JajodiaMutchlerVoting::Write(const NetworkState& net,
                                    SiteId origin) {
  return Access(net, origin, AccessType::kWrite);
}

Status JajodiaMutchlerVoting::Recover(const NetworkState& net,
                                      SiteId site) {
  if (!placement_.Contains(site)) {
    return Status::InvalidArgument("recovering site holds no copy");
  }
  if (!net.IsSiteUp(site)) {
    return Status::Unavailable("recovering site is down");
  }
  SiteSet group = net.ComponentOf(site);
  Evaluation eval = Evaluate(group);
  if (!eval.granted) {
    return Status::NoQuorum(name_ + ": recovery outside majority");
  }
  // JM recovery is subsumed by the update rule: the whole partition is
  // made current.
  CommitGroup(eval, /*is_write=*/false);
  return Status::OK();
}

void JajodiaMutchlerVoting::OnNetworkEvent(const NetworkState& net) {
  for (const SiteSet& group : net.Components()) {
    Evaluation eval = Evaluate(group);
    if (eval.reachable.Empty()) continue;
    counter_.Add(MessageKind::kInstantRefresh, 2 * eval.reachable.Size());
    if (!eval.granted) continue;
    bool membership_current =
        eval.current == eval.reachable &&
        eval.cardinality == eval.reachable.Size();
    if (!membership_current) CommitGroup(eval, /*is_write=*/false);
  }
}

}  // namespace dynvote
