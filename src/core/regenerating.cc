#include "core/regenerating.h"

#include "util/logging.h"

namespace dynvote {

Result<std::unique_ptr<RegeneratingVoting>> RegeneratingVoting::Make(
    std::shared_ptr<const Topology> topology, SiteSet data_copies,
    SiteSet initial_witnesses, RegeneratingOptions options) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  SiteSet all = topology->AllSites();
  if (data_copies.Empty() || !data_copies.IsSubsetOf(all)) {
    return Status::InvalidArgument("data copies invalid for this topology");
  }
  if (!initial_witnesses.IsSubsetOf(all) ||
      initial_witnesses.Intersects(data_copies)) {
    return Status::InvalidArgument(
        "witnesses must be topology sites disjoint from data copies");
  }
  if (options.regeneration_threshold < 1) {
    return Status::InvalidArgument("regeneration threshold must be >= 1");
  }
  if (!options.witness_hosts.Empty() &&
      !options.witness_hosts.IsSubsetOf(all)) {
    return Status::InvalidArgument("witness hosts outside the topology");
  }
  auto store = ReplicaStore::Make(all);
  if (!store.ok()) return store.status();
  return std::unique_ptr<RegeneratingVoting>(new RegeneratingVoting(
      std::move(topology), store.MoveValue(), data_copies,
      initial_witnesses, std::move(options)));
}

RegeneratingVoting::RegeneratingVoting(
    std::shared_ptr<const Topology> topology, ReplicaStore store,
    SiteSet data_copies, SiteSet initial_witnesses,
    RegeneratingOptions options)
    : topology_(std::move(topology)),
      store_(std::move(store)),
      data_copies_(data_copies),
      initial_witnesses_(initial_witnesses),
      options_(std::move(options)),
      name_(options_.name) {
  Reset();
}

void RegeneratingVoting::Reset() {
  witnesses_ = initial_witnesses_;
  members_ = data_copies_.Union(witnesses_);
  store_.Reset();
  // Initial ensembles: every member starts current with P = membership.
  store_.Commit(topology_->AllSites(), 1, 1, members_);
  miss_count_.assign(topology_->num_sites(), 0);
  regenerations_ = 0;
}

QuorumDecision RegeneratingVoting::Evaluate(SiteSet group) const {
  QuorumDecision d = EvaluateDynamicQuorum(
      store_, group.Intersect(members_), TieBreak::kLexicographic);
  if (d.granted &&
      d.current_set.Intersect(data_copies_).Empty()) {
    // Witnesses locate the current version but cannot produce the data.
    d.granted = false;
    d.by_tie_break = false;
  }
  return d;
}

bool RegeneratingVoting::WouldGrant(const NetworkState& net, SiteId origin,
                                    AccessType /*type*/) const {
  if (!net.IsSiteUp(origin)) return false;
  return Evaluate(net.ComponentOf(origin)).granted;
}

Status RegeneratingVoting::Access(const NetworkState& net, SiteId origin,
                                  AccessType type) {
  if (!net.IsSiteUp(origin)) {
    return Status::Unavailable("origin site is down");
  }
  SiteSet group = net.ComponentOf(origin);
  QuorumDecision d = Evaluate(group);
  counter_.Add(MessageKind::kProbe, members_.Size());
  counter_.Add(MessageKind::kProbeReply, d.reachable_copies.Size());
  LogDecision(type == AccessType::kWrite ? DecisionRecord::Operation::kWrite
                                         : DecisionRecord::Operation::kRead,
              origin, d.granted, d);
  if (!d.granted) {
    counter_.Add(MessageKind::kAbort, d.reachable_copies.Size());
    return Status::NoQuorum(name_ + ": " + d.ToString());
  }
  OpNumber op = store_.MaxOp(d.reachable_copies) + 1;
  VersionNumber version = store_.MaxVersion(d.reachable_copies);
  if (type == AccessType::kWrite) ++version;
  store_.Commit(d.current_set, op, version, d.current_set);
  counter_.Add(MessageKind::kCommit, d.current_set.Size());

  CommitInfo info;
  info.kind = type == AccessType::kWrite ? CommitInfo::Kind::kWrite
                                         : CommitInfo::Kind::kRead;
  info.participants = d.current_set;
  SiteSet data_sources = d.current_set.Intersect(data_copies_);
  info.source = data_sources.RankMax();
  info.version = version;
  NotifyCommit(info);
  return Status::OK();
}

Status RegeneratingVoting::Read(const NetworkState& net, SiteId origin) {
  return Access(net, origin, AccessType::kRead);
}

Status RegeneratingVoting::Write(const NetworkState& net, SiteId origin) {
  return Access(net, origin, AccessType::kWrite);
}

Status RegeneratingVoting::Recover(const NetworkState& net, SiteId site) {
  if (!members_.Contains(site)) {
    return Status::InvalidArgument(
        "recovering site is not a current member");
  }
  if (!net.IsSiteUp(site)) {
    return Status::Unavailable("recovering site is down");
  }
  SiteSet group = net.ComponentOf(site);
  QuorumDecision d = Evaluate(group);
  LogDecision(DecisionRecord::Operation::kRecover, site, d.granted, d);
  if (!d.granted) {
    return Status::NoQuorum(name_ + ": recovery outside majority");
  }
  OpNumber op = store_.MaxOp(d.reachable_copies) + 1;
  VersionNumber version = store_.MaxVersion(d.reachable_copies);
  bool needs_copy = store_.state(site).version < version &&
                    data_copies_.Contains(site);
  if (needs_copy) counter_.Add(MessageKind::kFileCopy, 1);
  SiteSet participants = d.current_set.Union(SiteSet{site});
  store_.Commit(participants, op, version, participants);
  counter_.Add(MessageKind::kCommit, participants.Size());
  if (needs_copy) {
    CommitInfo info;
    info.kind = CommitInfo::Kind::kRecovery;
    info.participants = SiteSet{site};
    info.source = d.current_set.Intersect(data_copies_).RankMax();
    info.version = version;
    NotifyCommit(info);
  }
  return Status::OK();
}

void RegeneratingVoting::ReintegrateGroup(const NetworkState& net,
                                          SiteSet group) {
  SiteSet reachable = group.Intersect(members_);
  for (SiteId s : reachable) {
    if (store_.state(s).op_number < store_.MaxOp(reachable)) {
      Status st = Recover(net, s);
      DYNVOTE_CHECK_MSG(st.ok(), "member reintegration must succeed");
    }
  }
}

void RegeneratingVoting::MaybeRegenerate(const NetworkState& /*net*/,
                                         SiteSet group) {
  // Update consecutive-miss counters: only the majority block observes
  // and acts, so this runs once per network event.
  SiteSet missing = members_.Minus(group);
  for (SiteId m : members_) {
    miss_count_[m] = missing.Contains(m) ? miss_count_[m] + 1 : 0;
  }

  SiteSet hosts = options_.witness_hosts;
  if (hosts.Empty()) {
    // Default host pool: any site not holding data, EXCLUDING gateway
    // hosts. A witness on a gateway couples two failure modes: the
    // gateway crashing removes the witness's vote *and* partitions every
    // copy behind it, turning one failure into a lost quorum (the same
    // reason Section 3 treats gateway hosts specially).
    hosts = topology_->AllSites().Minus(data_copies_);
    for (const BridgeInfo& bridge : topology_->bridges()) {
      if (bridge.gateway_site.has_value()) {
        hosts.Remove(*bridge.gateway_site);
      }
    }
  }
  for (SiteId w : witnesses_) {
    if (miss_count_[w] < options_.regeneration_threshold) continue;
    SiteSet candidates =
        group.Intersect(hosts).Minus(members_);
    if (candidates.Empty()) continue;  // nowhere to regenerate
    SiteId replacement = candidates.RankMax();

    witnesses_.Remove(w);
    members_.Remove(w);
    witnesses_.Add(replacement);
    members_.Add(replacement);
    miss_count_[replacement] = 0;
    ++regenerations_;

    // Commit the new membership through the ordinary machinery: the
    // block (including the fresh witness) becomes the partition set.
    SiteSet block = group.Intersect(members_);
    OpNumber op = store_.MaxOp(block.Union(SiteSet{replacement})) + 1;
    VersionNumber version = store_.MaxVersion(block);
    store_.Commit(block, op, version, block);
    counter_.Add(MessageKind::kCommit, block.Size());
  }
}

void RegeneratingVoting::OnNetworkEvent(const NetworkState& net) {
  for (const SiteSet& group : net.Components()) {
    SiteSet reachable = group.Intersect(members_);
    if (reachable.Empty()) continue;
    counter_.Add(MessageKind::kInstantRefresh, 2 * reachable.Size());
    QuorumDecision d = Evaluate(group);
    LogDecision(DecisionRecord::Operation::kRefresh, -1, d.granted, d);
    if (!d.granted) continue;
    bool membership_current =
        d.current_set == d.prev_partition && reachable == d.current_set;
    if (!membership_current) {
      OpNumber op = store_.MaxOp(d.reachable_copies) + 1;
      VersionNumber version = store_.MaxVersion(d.reachable_copies);
      store_.Commit(d.current_set, op, version, d.current_set);
      counter_.Add(MessageKind::kCommit, d.current_set.Size());
      ReintegrateGroup(net, group);
    }
    // Mutual exclusion guarantees at most one granted group per event, so
    // the regeneration pass (and its miss counters) runs at most once.
    MaybeRegenerate(net, group);
  }
}

}  // namespace dynvote
