// The Jajodia-Mutchler formulation of dynamic voting (SIGMOD 1987),
// which Section 2.1 of the Pâris-Long paper discusses: instead of the
// partition *set*, every copy stores the *cardinality* of the last
// majority partition. "It requires less storage to implement simple
// Dynamic Voting, but it cannot accommodate Lexicographic Dynamic Voting
// as it does not keep track of the identity of the maximum element of the
// partition set."
//
// We implement it to substantiate that claim mechanically: on identical
// histories the protocol's availability coincides exactly with the
// partition-set implementation of plain DV (asserted by a differential
// test), while the lexicographic tie-break is simply inexpressible in its
// state.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "net/topology.h"
#include "util/result.h"

namespace dynvote {

/// Per-copy state of the Jajodia-Mutchler protocol.
struct JmReplicaState {
  /// Update counter ("version number" VN in their paper — bumped by every
  /// successful operation, like our operation number).
  std::int64_t update_number = 1;
  /// Cardinality of the partition that performed the last update ("SC").
  int last_cardinality = 0;
  /// Data version, bumped by writes only (so recovery can tell whether a
  /// file copy is needed; JM's paper folds this into VN).
  std::int64_t data_version = 1;
};

/// Dynamic voting over update counts and cardinalities.
class JajodiaMutchlerVoting final : public ConsistencyProtocol {
 public:
  static Result<std::unique_ptr<JajodiaMutchlerVoting>> Make(
      std::shared_ptr<const Topology> topology, SiteSet placement);

  const std::string& name() const override { return name_; }
  SiteSet placement() const override { return placement_; }
  bool uses_instantaneous_information() const override { return true; }

  bool WouldGrant(const NetworkState& net, SiteId origin,
                  AccessType type) const override;
  Status Read(const NetworkState& net, SiteId origin) override;
  Status Write(const NetworkState& net, SiteId origin) override;
  Status Recover(const NetworkState& net, SiteId site) override;
  void OnNetworkEvent(const NetworkState& net) override;
  void Reset() override;
  std::uint64_t state_epoch() const override { return epoch_; }
  bool AppendStateSignature(std::string* out) const override;

  const JmReplicaState& state(SiteId site) const;

 private:
  JajodiaMutchlerVoting(std::shared_ptr<const Topology> topology,
                        SiteSet placement);

  /// The majority test: reachable copies carrying the maximal update
  /// number must outnumber half of the recorded cardinality.
  struct Evaluation {
    bool granted = false;
    SiteSet reachable;     // reachable copies
    SiteSet current;       // max-update-number subset
    std::int64_t max_update = 0;
    int cardinality = 0;   // SC read from any current member
  };
  Evaluation Evaluate(SiteSet group) const;

  Status Access(const NetworkState& net, SiteId origin, AccessType type);
  /// Commits an update: every reachable copy becomes current with the
  /// group's size as the new cardinality (stale members catch up — JM's
  /// protocol brings the whole partition current on update).
  void CommitGroup(const Evaluation& eval, bool is_write);

  std::shared_ptr<const Topology> topology_;
  SiteSet placement_;
  std::vector<JmReplicaState> states_;
  std::uint64_t epoch_ = 0;  // bumped by every states_ mutation
  std::string name_ = "JM-DV";
};

}  // namespace dynvote
