// The quorum test at the heart of every dynamic voting variant in the
// paper (Algorithm 1, Figures 1-3 and 5-7), implemented as a pure function
// over replica state so that all protocol classes, the simulation driver
// and the property tests share one definition.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "obs/reason.h"
#include "repl/replica_store.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {

/// How a tie (exactly half of the previous majority block reachable) is
/// resolved.
enum class TieBreak {
  /// Original Davčev-Burkhard dynamic voting: ties fail.
  kNone,
  /// Jajodia's lexicographic rule: the half containing the maximum element
  /// of the previous majority block wins. Site ids rank by SiteSet's
  /// convention (lower id = higher rank).
  kLexicographic,
};

/// Per-site vote weights (the paper's future-work "weight assignments").
/// Default-constructed weights give every site one vote, which reproduces
/// the unweighted algorithms exactly.
class VoteWeights {
 public:
  /// Every site weighs 1.
  VoteWeights() = default;

  /// Explicit weights, one entry per site id starting at 0. All weights
  /// must be >= 0, and at least one site in any placement should weigh
  /// > 0 for the protocols to be usable. The table covers exactly the
  /// sites it names: asking for the weight of a site beyond it is a
  /// contract violation (historically it silently returned 1, which let a
  /// one-entry-short table flip grant/deny decisions — see
  /// tests/core/quorum_test.cc). Protocol factories reject weight tables
  /// that do not cover their placement; use MakePadded to opt in to
  /// filling the gap with ones explicitly.
  static Result<VoteWeights> Make(std::vector<int> weights);

  /// Like Make, but explicitly pads the table with weight-1 entries up to
  /// `num_sites` entries. Rejects a table longer than `num_sites`.
  static Result<VoteWeights> MakePadded(std::vector<int> weights,
                                        int num_sites);

  /// True iff every site in `sites` has an explicit entry (uniform
  /// weights cover everything). O(1): a mask comparison.
  bool Covers(SiteSet sites) const {
    return weights_.empty() || sites.IsSubsetOf(covered_);
  }

  /// Weight of one site. CHECK-fails for a site a non-uniform table does
  /// not cover.
  int WeightOf(SiteId site) const;

  /// Total weight of a set. CHECK-fails unless Covers(sites). Unit
  /// weights reduce to a popcount; a set covering the whole table returns
  /// the cached total without iterating.
  long long WeightOf(SiteSet sites) const;

  /// Cached sum over the whole table. Only meaningful for non-uniform
  /// weights (a uniform table is unbounded); CHECK-fails otherwise.
  long long TotalWeight() const;

  bool IsUniform() const { return weights_.empty(); }

 private:
  explicit VoteWeights(std::vector<int> weights);
  std::vector<int> weights_;  // empty = all ones
  SiteSet covered_;           // sites with an explicit entry
  long long total_ = 0;       // cached sum of weights_
};

/// Outcome of the majority-partition test for one group of mutually
/// communicating sites.
struct QuorumDecision {
  /// True iff the group is the majority partition and may proceed.
  bool granted = false;
  /// True iff the grant needed the lexicographic tie-break.
  bool by_tie_break = false;
  /// True iff the raw vote count granted but the decision was refused
  /// because the current version is held only by reachable witnesses —
  /// there is no data source to read or copy from (set by
  /// DynamicVoting::Evaluate, never by EvaluateDynamicQuorum itself).
  bool witness_refused = false;
  /// R ∩ placement: reachable physical copies.
  SiteSet reachable_copies;
  /// Q: reachable copies carrying the maximal operation number.
  SiteSet quorum_set;
  /// S: reachable copies carrying the maximal version number.
  SiteSet current_set;
  /// The votes actually counted: Q itself, or the topological closure T
  /// (Q plus unreachable members of P_m sharing a segment with a
  /// reachable member of P_m).
  SiteSet counted_set;
  /// P_m: the previous majority block, read from any member of Q.
  SiteSet prev_partition;
  /// m: the member of Q whose ensemble was used.
  SiteId representative = -1;
  /// Which rule of the paper produced the outcome. In particular,
  /// kGrantedTopologicalCarry means the vote-carrying closure T was
  /// decisive: counting Q alone would have denied this group.
  QuorumReason reason = QuorumReason::kDeniedNoCopies;

  std::string ToString() const;
};

/// Evaluates the paper's majority-partition test for the sites `reachable`
/// (the group of mutually communicating sites containing the requester;
/// non-copy members are ignored).
///
/// * `tie_break` selects DV (kNone) vs LDV/ODV behaviour.
/// * If `topology` is non-null the topological rule of Section 3 is used:
///   a reachable member of the previous majority block carries the votes
///   of unreachable members on its own segment (TDV/OTDV). The paper
///   prints the carrier condition as `s ∈ Pm ∪ R`; we implement the
///   evident intent `s ∈ Pm ∩ R` — only an *active* member of the previous
///   block may carry votes.
/// * `weights` generalises vote counting to weighted votes.
///
/// Returns a decision with granted == false when `reachable` holds no
/// copies.
QuorumDecision EvaluateDynamicQuorum(const ReplicaStore& store,
                                     SiteSet reachable, TieBreak tie_break,
                                     const Topology* topology = nullptr,
                                     const VoteWeights& weights = {});

/// Static majority test used by Majority Consensus Voting: does
/// `reachable` contain more than half of the total vote weight of
/// `placement`? No tie-break — MCV cannot resolve ties without dynamic
/// state.
bool HasStaticMajority(SiteSet reachable, SiteSet placement,
                       const VoteWeights& weights = {});

}  // namespace dynvote
