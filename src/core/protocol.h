// Abstract interface shared by every consistency protocol in the library.
// The simulation driver, the replicated KV store and the benches all speak
// to protocols through this interface.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/trace.h"
#include "net/network_state.h"
#include "obs/context.h"
#include "repl/message_bus.h"
#include "util/site_set.h"
#include "util/status.h"

namespace dynvote {

/// Kind of file access being attempted.
enum class AccessType { kRead, kWrite };

/// What a committed operation did to the replicated data. Data layers
/// (e.g. the replicated KV store) subscribe via
/// ConsistencyProtocol::set_commit_hook to move actual contents exactly
/// where the protocol moved its version state.
struct CommitInfo {
  enum class Kind {
    /// A read was granted; no data moved. `source` holds a current copy.
    kRead,
    /// A write committed: every site in `participants` now holds the new
    /// object contents, built on top of `source`'s pre-commit contents
    /// (the paper replicates whole files, so a write is a whole-object
    /// read-modify-write).
    kWrite,
    /// A stale copy recovered: the single site in `participants` copied
    /// the object from `source`.
    kRecovery,
  };
  Kind kind = Kind::kRead;
  /// Sites whose copy is current after the commit.
  SiteSet participants;
  /// A site holding the pre-commit current contents (-1 if none needed).
  SiteId source = -1;
  /// Version number after the commit.
  std::int64_t version = 0;
};

/// A replica-consistency protocol for one replicated file.
///
/// Protocols own their consistency-control state (operation numbers,
/// version numbers, partition sets, ...). The network is observed, never
/// owned: every entry point receives the current NetworkState.
///
/// Threading: instances are confined to the single simulation thread.
class ConsistencyProtocol {
 public:
  virtual ~ConsistencyProtocol() = default;

  /// Short name ("MCV", "ODV", ...).
  virtual const std::string& name() const = 0;

  /// Sites holding physical copies (or witnesses) of the file.
  virtual SiteSet placement() const = 0;

  /// Sites that hold actual file contents. Equal to placement() except
  /// for protocols with witnesses, which vote but store no data.
  virtual SiteSet data_sites() const { return placement(); }

  /// True iff the protocol preserves mutual exclusion under network
  /// partitions. Available Copy returns false (it assumes partitions
  /// cannot happen); every voting protocol returns true. The simulation
  /// driver only enforces the at-most-one-majority-partition invariant
  /// for partition-safe protocols.
  virtual bool partition_safe() const { return true; }

  /// True for protocols that rely on the connection vector: their state
  /// tracks every change of network status instantaneously (DV, LDV, TDV).
  /// False for MCV (no dynamic state) and the optimistic variants (state
  /// exchanged only at access time).
  virtual bool uses_instantaneous_information() const = 0;

  /// Would an access of `type` issued now at `origin` be granted? Pure:
  /// never mutates protocol state. `origin` must be a live site; the
  /// decision depends only on origin's group of communicating sites.
  virtual bool WouldGrant(const NetworkState& net, SiteId origin,
                          AccessType type) const = 0;

  /// Memoizing front end to WouldGrant. The WouldGrant contract is that
  /// the network's influence on the decision is fully captured by
  /// origin's group of communicating sites, so results are cached keyed
  /// by (component mask, access type); the whole cache is invalidated
  /// whenever `state_epoch()` moves. A network change invalidates
  /// affected entries naturally — it changes the component mask of every
  /// group it touched (NetworkState::generation() tracks the same events
  /// for callers that key on it). Protocols that do not report a state
  /// epoch (state_epoch() == kStateEpochUncacheable) and protocols with
  /// caching disabled fall through to WouldGrant — the answer is always
  /// identical to a direct WouldGrant call.
  bool CachedWouldGrant(const NetworkState& net, SiteId origin,
                        AccessType type) const;

  /// Sentinel state_epoch() value: "this protocol cannot describe its
  /// mutation points as an epoch; never memoize its decisions".
  static constexpr std::uint64_t kStateEpochUncacheable =
      ~std::uint64_t{0};

  /// Monotonic counter that moves on every mutation of the protocol's
  /// consistency-control state, or kStateEpochUncacheable if the protocol
  /// does not track one. Used only by CachedWouldGrant.
  virtual std::uint64_t state_epoch() const { return kStateEpochUncacheable; }

  /// Appends a *canonical* fingerprint of the protocol's
  /// consistency-control state to `out` and returns true. Canonical means
  /// that two instances with equal fingerprints (same options, same
  /// placement) make identical grant/commit decisions on every possible
  /// future — monotonic counters must be rank-normalized, not emitted raw
  /// (see ReplicaStore::AppendCanonicalSignature). The model checker
  /// (src/check/) keys its visited-state memoization on this; a protocol
  /// that cannot canonicalize its state returns false and the checker
  /// falls back to unmerged exploration.
  virtual bool AppendStateSignature(std::string* out) const {
    (void)out;
    return false;
  }

  /// Escape hatch (the --no-quorum-cache flag): disables memoization on
  /// this instance, making CachedWouldGrant a plain WouldGrant call.
  void set_quorum_cache_enabled(bool enabled) {
    quorum_cache_enabled_ = enabled;
  }
  bool quorum_cache_enabled() const { return quorum_cache_enabled_; }

  /// Availability of the replicated file at this instant: true iff a user
  /// able to reach any live site would be granted an access of `type`
  /// (Section 4's user model). Pure.
  virtual bool IsAvailable(const NetworkState& net,
                           AccessType type = AccessType::kWrite) const;

  /// Performs a read at `origin`. Returns NoQuorum if origin is outside
  /// the majority partition, Unavailable if origin is down.
  virtual Status Read(const NetworkState& net, SiteId origin) = 0;

  /// Performs a write at `origin`.
  virtual Status Write(const NetworkState& net, SiteId origin) = 0;

  /// Runs the recovery procedure for (live) site `site`: rejoin the
  /// majority partition, copying the file if stale. Returns NoQuorum if no
  /// majority partition is reachable from `site`.
  virtual Status Recover(const NetworkState& net, SiteId site) = 0;

  /// The paper's user model: one access attempt that may originate at any
  /// live site. Performs the operation in the (unique) group that grants
  /// it, if any; optimistic protocols additionally reintegrate reachable
  /// stale copies here, this being their only state-exchange opportunity.
  virtual Status UserAccess(const NetworkState& net, AccessType type);

  /// Notification that the network state just changed (site or repeater
  /// went up or down). Instantaneous-information protocols refresh their
  /// state; others ignore it.
  virtual void OnNetworkEvent(const NetworkState& net) { (void)net; }

  /// Returns the protocol to its initial state (all copies current).
  virtual void Reset() = 0;

  /// Message accounting (see repl/message_bus.h).
  MessageCounter* counter() { return &counter_; }
  const MessageCounter& counter() const { return counter_; }

  /// Registers a callback fired after every committed operation that
  /// affects where current data lives. At most one hook; pass nullptr to
  /// clear.
  using CommitHook = std::function<void(const CommitInfo&)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Attaches a decision log (see core/trace.h); the protocol records
  /// every quorum decision it makes. Not owned; pass nullptr to detach.
  void set_decision_log(DecisionLog* log) { decision_log_ = log; }
  DecisionLog* decision_log() const { return decision_log_; }

  /// Attaches an observability context (trace sink + metrics shard, see
  /// obs/context.h). Not owned; null (the default) disables all emission,
  /// leaving a single pointer test on each instrumented path.
  void set_obs(ObsContext* obs) { obs_ = obs; }
  ObsContext* obs() const { return obs_; }

 protected:
  /// Fires the commit hook, if any.
  void NotifyCommit(const CommitInfo& info) {
    if (commit_hook_) commit_hook_(info);
  }

  /// Attributes a reason code to a whole UserAccess outcome. Called only
  /// when observability is attached, after the access completed. `origin`
  /// is the site the granted operation ran at (-1 on denial). The default
  /// covers quorumless protocols; MCV, AC and DynamicVoting refine it.
  virtual QuorumReason ClassifyUserAccess(const NetworkState& net,
                                          AccessType type, bool granted,
                                          SiteId origin) const;

  /// Emits a kQuorum trace event for a decision served from a cache
  /// (CachedWouldGrant ring or an Evaluate memo) and bumps the cache-hit
  /// counter. One branch when obs is detached.
  void EmitCacheHit(std::uint64_t group_mask, AccessType type,
                    bool granted) const {
    if (obs_ != nullptr) EmitCacheHitSlow(group_mask, type, granted);
  }

  /// Emits a kQuorum trace event for a freshly computed decision and
  /// bumps the per-reason evaluation counter.
  void EmitQuorumDecision(std::uint64_t group_mask,
                          const QuorumDecision& decision) const {
    if (obs_ != nullptr) EmitQuorumDecisionSlow(group_mask, decision);
  }

  /// Emits a kAccess trace event (one per UserAccess call) and bumps the
  /// access counters; classifies the outcome via ClassifyUserAccess.
  void EmitUserAccess(const NetworkState& net, AccessType type, bool granted,
                      SiteId origin) const {
    if (obs_ != nullptr) EmitUserAccessSlow(net, type, granted, origin);
  }

  /// Like EmitUserAccess, for overrides that already know the reason and
  /// need no classification pass (DynamicVoting::UserAccess).
  void EmitUserAccessAs(AccessType type, bool granted, SiteId origin,
                        QuorumReason reason) const {
    if (obs_ != nullptr) EmitUserAccessAsSlow(type, granted, origin, reason);
  }

  /// Records a decision if a log is attached.
  void LogDecision(DecisionRecord::Operation operation, SiteId origin,
                   bool granted, const QuorumDecision& decision) {
    if (decision_log_ == nullptr) return;
    DecisionRecord record;
    record.protocol = name();
    record.operation = operation;
    record.origin = origin;
    record.granted = granted;
    record.decision = decision;
    decision_log_->Record(std::move(record));
  }

  MessageCounter counter_;

 private:
  struct QuorumCacheEntry {
    std::uint64_t component_mask;
    AccessType type;
    bool granted;
  };
  /// Small ring of recent decisions: a network has few live components at
  /// any instant, so the working set is tiny, but masks from superseded
  /// network states would otherwise accumulate between state mutations —
  /// the ring evicts them in insertion order and keeps the linear scan
  /// O(16).
  static constexpr std::size_t kQuorumCacheSlots = 16;
  struct QuorumCache {
    std::uint64_t epoch = 0;
    bool valid = false;
    std::size_t size = 0;
    std::size_t next = 0;  // ring insertion cursor
    QuorumCacheEntry entries[kQuorumCacheSlots];
  };

  /// Stable counter-cell pointers for this protocol's metric keys,
  /// resolved at most once per key per (shard, cell_epoch) — the serving
  /// model makes these the highest-rate metric updates in the
  /// simulation, so the steady-state cost of an emission must be a
  /// single pointer bump, not a key build plus a map walk. Cells resolve
  /// lazily at first increment, so no zero-valued counters leak into
  /// exports.
  struct MetricCells {
    MetricsShard* shard = nullptr;
    std::uint64_t epoch = 0;
    std::uint64_t* cache_hits = nullptr;
    std::uint64_t* attempted = nullptr;
    std::uint64_t* granted = nullptr;
    std::uint64_t* access_reason[kNumQuorumReasons] = {};
    std::uint64_t* evaluations[kNumQuorumReasons] = {};
  };
  /// Returns metric_cells_ rebound to `shard`, dropping stale pointers
  /// when the shard or its epoch moved.
  MetricCells& CellsFor(MetricsShard* shard) const;

  void EmitCacheHitSlow(std::uint64_t group_mask, AccessType type,
                        bool granted) const;
  void EmitQuorumDecisionSlow(std::uint64_t group_mask,
                              const QuorumDecision& decision) const;
  void EmitUserAccessSlow(const NetworkState& net, AccessType type,
                          bool granted, SiteId origin) const;
  void EmitUserAccessAsSlow(AccessType type, bool granted, SiteId origin,
                            QuorumReason reason) const;

  CommitHook commit_hook_;
  DecisionLog* decision_log_ = nullptr;
  ObsContext* obs_ = nullptr;
  bool quorum_cache_enabled_ = true;
  mutable QuorumCache quorum_cache_;
  /// The sink's RegisterLabel() token for name(), re-registered whenever
  /// the sink changes; lets the typed trace writes skip per-event string
  /// interning.
  mutable TraceLabelCache trace_label_;
  mutable MetricCells metric_cells_;
};

}  // namespace dynvote
