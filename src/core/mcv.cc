#include "core/mcv.h"

namespace dynvote {

Result<std::unique_ptr<MajorityConsensusVoting>> MajorityConsensusVoting::Make(
    SiteSet placement, McvOptions options) {
  auto store = ReplicaStore::Make(placement);
  if (!store.ok()) return store.status();

  if (!options.weights.Covers(placement)) {
    return Status::InvalidArgument(
        "vote weight table does not cover the placement; pass one entry "
        "per site or use VoteWeights::MakePadded");
  }
  long long total = options.weights.WeightOf(placement);
  if (total <= 0) {
    return Status::InvalidArgument("placement has zero total vote weight");
  }
  long long majority = total / 2 + 1;
  long long r = options.read_quorum.value_or(majority);
  long long w = options.write_quorum.value_or(majority);
  if (r < 1 || w < 1 || r > total || w > total) {
    return Status::InvalidArgument("quorum outside [1, total weight]");
  }
  if (r + w <= total) {
    return Status::InvalidArgument(
        "read and write quorums must overlap: r + w > total weight");
  }
  if (2 * w <= total) {
    return Status::InvalidArgument(
        "write quorums must overlap: 2w > total weight");
  }
  if (options.name.empty()) {
    options.name = options.weights.IsUniform() ? "MCV" : "WMCV";
  }
  return std::unique_ptr<MajorityConsensusVoting>(new MajorityConsensusVoting(
      store.MoveValue(), std::move(options), r, w));
}

MajorityConsensusVoting::MajorityConsensusVoting(ReplicaStore store,
                                                 McvOptions options,
                                                 long long r, long long w)
    : store_(std::move(store)),
      weights_(std::move(options.weights)),
      tie_break_(options.tie_break),
      read_quorum_(r),
      write_quorum_(w),
      explicit_quorums_(options.read_quorum.has_value() ||
                        options.write_quorum.has_value()),
      name_(std::move(options.name)) {}

SiteSet MajorityConsensusVoting::ReachableCopies(const NetworkState& net,
                                                 SiteId origin) const {
  return net.ComponentOf(origin).Intersect(store_.placement());
}

bool MajorityConsensusVoting::WouldGrant(const NetworkState& net,
                                         SiteId origin,
                                         AccessType type) const {
  if (!net.IsSiteUp(origin)) return false;
  SiteSet reachable = ReachableCopies(net, origin);
  long long votes = weights_.WeightOf(reachable);
  long long needed =
      type == AccessType::kWrite ? write_quorum_ : read_quorum_;
  if (votes >= needed) return true;
  // Static lexicographic tie resolution: exactly half of the total vote
  // weight suffices when the group holds the maximum element of the
  // placement. Only meaningful for the default majority quorums — with
  // explicit Gifford quorums the caller chose the exact thresholds.
  if (tie_break_ == TieBreak::kLexicographic && !explicit_quorums_) {
    long long total = weights_.WeightOf(store_.placement());
    if (2 * votes == total &&
        reachable.Contains(store_.placement().RankMax())) {
      return true;
    }
  }
  return false;
}

QuorumReason MajorityConsensusVoting::ClassifyUserAccess(
    const NetworkState& net, AccessType type, bool granted,
    SiteId origin) const {
  long long needed =
      type == AccessType::kWrite ? write_quorum_ : read_quorum_;
  if (granted) {
    long long votes = weights_.WeightOf(ReachableCopies(net, origin));
    return votes >= needed ? QuorumReason::kGrantedMajority
                           : QuorumReason::kGrantedTieLex;
  }
  QuorumReason denial = QuorumReason::kDeniedNoCopies;
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(store_.placement());
    if (copies.Empty()) continue;
    long long votes = weights_.WeightOf(copies);
    QuorumReason reason =
        !explicit_quorums_ &&
                2 * votes == weights_.WeightOf(store_.placement())
            ? QuorumReason::kDeniedTieLost
            : QuorumReason::kDeniedMinority;
    if (DenialSeverity(reason) > DenialSeverity(denial)) denial = reason;
  }
  return denial;
}

Status MajorityConsensusVoting::Access(const NetworkState& net,
                                       SiteId origin, AccessType type) {
  if (!net.IsSiteUp(origin)) {
    return Status::Unavailable("origin site is down");
  }
  SiteSet reachable = ReachableCopies(net, origin);
  counter_.Add(MessageKind::kProbe, store_.placement().Size());
  counter_.Add(MessageKind::kProbeReply, reachable.Size());
  counter_.Add(MessageKind::kStateRequest, reachable.Size());
  counter_.Add(MessageKind::kStateReply, reachable.Size());

  bool granted = WouldGrant(net, origin, type);
  {
    // Synthesize the decision view for the trace: static voting has no
    // dynamic partition sets, so Pm is the whole placement.
    QuorumDecision d;
    d.granted = granted;
    d.reachable_copies = reachable;
    d.quorum_set = reachable;
    d.current_set = store_.MaxVersionSites(reachable);
    d.counted_set = reachable;
    d.prev_partition = store_.placement();
    LogDecision(type == AccessType::kWrite
                    ? DecisionRecord::Operation::kWrite
                    : DecisionRecord::Operation::kRead,
                origin, granted, d);
  }
  if (!granted) {
    counter_.Add(MessageKind::kAbort, reachable.Size());
    return Status::NoQuorum(name_ + ": fewer votes than the static quorum");
  }

  OpNumber op = store_.MaxOp(reachable) + 1;
  VersionNumber version = store_.MaxVersion(reachable);
  // A current copy within the read quorum (guaranteed to exist because
  // any read quorum intersects every write quorum).
  SiteId source = store_.MaxVersionSites(reachable).RankMax();
  if (type == AccessType::kWrite) {
    // Gifford-style write: every reachable copy receives the new version,
    // so the quorum intersection property keeps later reads current.
    ++version;
    store_.Commit(reachable, op, version, store_.placement());
    counter_.Add(MessageKind::kCommit, reachable.Size());
  }

  CommitInfo info;
  info.kind = type == AccessType::kWrite ? CommitInfo::Kind::kWrite
                                         : CommitInfo::Kind::kRead;
  info.participants = type == AccessType::kWrite
                          ? reachable
                          : store_.MaxVersionSites(reachable);
  info.source = source;
  info.version = version;
  NotifyCommit(info);
  return Status::OK();
}

Status MajorityConsensusVoting::Read(const NetworkState& net, SiteId origin) {
  return Access(net, origin, AccessType::kRead);
}

Status MajorityConsensusVoting::Write(const NetworkState& net,
                                      SiteId origin) {
  return Access(net, origin, AccessType::kWrite);
}

Status MajorityConsensusVoting::Recover(const NetworkState& net,
                                        SiteId site) {
  if (!net.IsSiteUp(site)) {
    return Status::Unavailable("recovering site is down");
  }
  if (!WouldGrant(net, site, AccessType::kRead)) {
    return Status::NoQuorum(name_ + ": no read quorum reachable");
  }
  // Bring the copy up to date so it contributes a current version to
  // later read quorums (harmless: MCV correctness never depends on it).
  SiteSet reachable = ReachableCopies(net, site);
  VersionNumber version = store_.MaxVersion(reachable);
  if (store_.state(site).version < version) {
    counter_.Add(MessageKind::kFileCopy, 1);
    SiteId source = store_.MaxVersionSites(reachable).RankMax();
    ReplicaState* mine = store_.mutable_state(site);
    mine->version = version;
    mine->op_number = store_.MaxOp(reachable);

    CommitInfo info;
    info.kind = CommitInfo::Kind::kRecovery;
    info.participants = SiteSet{site};
    info.source = source;
    info.version = version;
    NotifyCommit(info);
  }
  return Status::OK();
}

}  // namespace dynvote
