#include "core/protocol.h"

namespace dynvote {

bool ConsistencyProtocol::IsAvailable(const NetworkState& net,
                                      AccessType type) const {
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(placement());
    if (copies.Empty()) continue;
    if (WouldGrant(net, copies.RankMax(), type)) return true;
  }
  return false;
}

Status ConsistencyProtocol::UserAccess(const NetworkState& net,
                                       AccessType type) {
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(placement());
    if (copies.Empty()) continue;
    SiteId origin = copies.RankMax();
    if (!WouldGrant(net, origin, type)) continue;
    return type == AccessType::kWrite ? Write(net, origin)
                                      : Read(net, origin);
  }
  return Status::NoQuorum("no group of communicating sites holds a quorum");
}

}  // namespace dynvote
