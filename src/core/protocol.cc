#include "core/protocol.h"

namespace dynvote {

bool ConsistencyProtocol::CachedWouldGrant(const NetworkState& net,
                                           SiteId origin,
                                           AccessType type) const {
  const std::uint64_t epoch = state_epoch();
  if (!quorum_cache_enabled_ || epoch == kStateEpochUncacheable ||
      !net.IsSiteUp(origin)) {
    return WouldGrant(net, origin, type);
  }
  QuorumCache& cache = quorum_cache_;
  if (!cache.valid || cache.epoch != epoch) {
    cache.size = 0;
    cache.next = 0;
    cache.epoch = epoch;
    cache.valid = true;
  }
  const std::uint64_t component_mask = net.ComponentOf(origin).mask();
  for (std::size_t i = 0; i < cache.size; ++i) {
    const QuorumCacheEntry& entry = cache.entries[i];
    if (entry.component_mask == component_mask && entry.type == type) {
      return entry.granted;
    }
  }
  bool granted = WouldGrant(net, origin, type);
  cache.entries[cache.next] = QuorumCacheEntry{component_mask, type, granted};
  cache.next = (cache.next + 1) % kQuorumCacheSlots;
  if (cache.size < kQuorumCacheSlots) ++cache.size;
  return granted;
}

bool ConsistencyProtocol::IsAvailable(const NetworkState& net,
                                      AccessType type) const {
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(placement());
    if (copies.Empty()) continue;
    if (CachedWouldGrant(net, copies.RankMax(), type)) return true;
  }
  return false;
}

Status ConsistencyProtocol::UserAccess(const NetworkState& net,
                                       AccessType type) {
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(placement());
    if (copies.Empty()) continue;
    SiteId origin = copies.RankMax();
    if (!CachedWouldGrant(net, origin, type)) continue;
    return type == AccessType::kWrite ? Write(net, origin)
                                      : Read(net, origin);
  }
  return Status::NoQuorum("no group of communicating sites holds a quorum");
}

}  // namespace dynvote
