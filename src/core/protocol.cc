#include "core/protocol.h"

#include <string>

#include "obs/binary_trace.h"

namespace dynvote {
namespace {

std::string ReasonKey(const char* metric, const std::string& protocol,
                      QuorumReason reason) {
  std::string key(metric);
  key += "{protocol=";
  key += protocol;
  key += ",reason=";
  key += QuorumReasonName(reason);
  key += "}";
  return key;
}

std::string ProtocolKey(const char* metric, const std::string& protocol) {
  std::string key(metric);
  key += "{protocol=";
  key += protocol;
  key += "}";
  return key;
}

}  // namespace

ConsistencyProtocol::MetricCells& ConsistencyProtocol::CellsFor(
    MetricsShard* shard) const {
  if (metric_cells_.shard != shard ||
      metric_cells_.epoch != shard->cell_epoch()) {
    metric_cells_ = MetricCells{};
    metric_cells_.shard = shard;
    metric_cells_.epoch = shard->cell_epoch();
  }
  return metric_cells_;
}

bool ConsistencyProtocol::CachedWouldGrant(const NetworkState& net,
                                           SiteId origin,
                                           AccessType type) const {
  const std::uint64_t epoch = state_epoch();
  if (!quorum_cache_enabled_ || epoch == kStateEpochUncacheable ||
      !net.IsSiteUp(origin)) {
    return WouldGrant(net, origin, type);
  }
  QuorumCache& cache = quorum_cache_;
  if (!cache.valid || cache.epoch != epoch) {
    cache.size = 0;
    cache.next = 0;
    cache.epoch = epoch;
    cache.valid = true;
  }
  const std::uint64_t component_mask = net.ComponentOf(origin).mask();
  for (std::size_t i = 0; i < cache.size; ++i) {
    const QuorumCacheEntry& entry = cache.entries[i];
    if (entry.component_mask == component_mask && entry.type == type) {
      EmitCacheHit(component_mask, type, entry.granted);
      return entry.granted;
    }
  }
  bool granted = WouldGrant(net, origin, type);
  cache.entries[cache.next] = QuorumCacheEntry{component_mask, type, granted};
  cache.next = (cache.next + 1) % kQuorumCacheSlots;
  if (cache.size < kQuorumCacheSlots) ++cache.size;
  return granted;
}

bool ConsistencyProtocol::IsAvailable(const NetworkState& net,
                                      AccessType type) const {
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(placement());
    if (copies.Empty()) continue;
    if (CachedWouldGrant(net, copies.RankMax(), type)) return true;
  }
  return false;
}

Status ConsistencyProtocol::UserAccess(const NetworkState& net,
                                       AccessType type) {
  for (const SiteSet& group : net.Components()) {
    SiteSet copies = group.Intersect(placement());
    if (copies.Empty()) continue;
    SiteId origin = copies.RankMax();
    if (!CachedWouldGrant(net, origin, type)) continue;
    Status st = type == AccessType::kWrite ? Write(net, origin)
                                           : Read(net, origin);
    EmitUserAccess(net, type, st.ok(), origin);
    return st;
  }
  EmitUserAccess(net, type, false, -1);
  return Status::NoQuorum("no group of communicating sites holds a quorum");
}

QuorumReason ConsistencyProtocol::ClassifyUserAccess(const NetworkState& net,
                                                     AccessType /*type*/,
                                                     bool granted,
                                                     SiteId /*origin*/) const {
  if (granted) return QuorumReason::kGrantedMajority;
  for (const SiteSet& group : net.Components()) {
    if (group.Intersects(placement())) return QuorumReason::kDeniedMinority;
  }
  return QuorumReason::kDeniedNoCopies;
}

void ConsistencyProtocol::EmitCacheHitSlow(std::uint64_t group_mask,
                                           AccessType type,
                                           bool granted) const {
  if (obs_->sink != nullptr) {
    TraceSink* sink = obs_->sink;
    QuorumSetMasks sets;
    sets.group = group_mask;
    // Devirtualized fast path (see TraceSink::fast_path): cache hits are
    // the highest-rate event in the simulation; the direct encoder call
    // folds the binary cache-hit special case away and skips the virtual
    // name() lookup — the cached label already names the protocol.
    if (trace_label_.BinaryHit(sink)) {
      static_cast<BinaryTraceSink*>(sink)->EncodeQuorum(
          obs_->now, obs_->seq, obs_->replication, trace_label_.id,
          type == AccessType::kWrite, granted, QuorumReason::kCacheHit, sets);
    } else {
      const std::string& proto = name();
      sink->WriteQuorum(obs_->now, obs_->seq, obs_->replication, proto,
                        trace_label_.Resolve(sink, proto),
                        type == AccessType::kWrite, granted,
                        QuorumReason::kCacheHit, sets);
    }
  }
  if (obs_->metrics != nullptr) {
    MetricCells& cells = CellsFor(obs_->metrics);
    if (cells.cache_hits == nullptr) {
      cells.cache_hits =
          obs_->metrics->CounterCell(ProtocolKey("quorum_cache_hits", name()));
    }
    ++*cells.cache_hits;
  }
}

void ConsistencyProtocol::EmitQuorumDecisionSlow(
    std::uint64_t group_mask, const QuorumDecision& decision) const {
  if (obs_->sink != nullptr) {
    TraceSink* sink = obs_->sink;
    QuorumSetMasks sets;
    sets.group = group_mask;
    sets.r = decision.reachable_copies.mask();
    sets.q = decision.quorum_set.mask();
    sets.s = decision.current_set.mask();
    sets.t = decision.counted_set.mask();
    sets.pm = decision.prev_partition.mask();
    // The dynamic-voting quorum test is access-type independent; quorum
    // events carry write=false uniformly.
    if (trace_label_.BinaryHit(sink)) {
      static_cast<BinaryTraceSink*>(sink)->EncodeQuorum(
          obs_->now, obs_->seq, obs_->replication, trace_label_.id,
          /*write=*/false, decision.granted, decision.reason, sets);
    } else {
      const std::string& proto = name();
      sink->WriteQuorum(obs_->now, obs_->seq, obs_->replication, proto,
                        trace_label_.Resolve(sink, proto),
                        /*write=*/false, decision.granted, decision.reason,
                        sets);
    }
  }
  if (obs_->metrics != nullptr) {
    MetricCells& cells = CellsFor(obs_->metrics);
    std::uint64_t*& cell =
        cells.evaluations[static_cast<int>(decision.reason)];
    if (cell == nullptr) {
      cell = obs_->metrics->CounterCell(
          ReasonKey("quorum_evaluations", name(), decision.reason));
    }
    ++*cell;
  }
}

void ConsistencyProtocol::EmitUserAccessSlow(const NetworkState& net,
                                             AccessType type, bool granted,
                                             SiteId origin) const {
  EmitUserAccessAsSlow(type, granted, origin,
                       ClassifyUserAccess(net, type, granted, origin));
}

void ConsistencyProtocol::EmitUserAccessAsSlow(AccessType type, bool granted,
                                               SiteId origin,
                                               QuorumReason reason) const {
  if (obs_->sink != nullptr) {
    TraceSink* sink = obs_->sink;
    if (trace_label_.BinaryHit(sink)) {
      static_cast<BinaryTraceSink*>(sink)->EncodeAccess(
          obs_->now, obs_->seq, obs_->replication, trace_label_.id,
          type == AccessType::kWrite, granted, reason, origin);
    } else {
      const std::string& proto = name();
      sink->WriteAccess(obs_->now, obs_->seq, obs_->replication, proto,
                        trace_label_.Resolve(sink, proto),
                        type == AccessType::kWrite, granted, reason, origin);
    }
  }
  if (obs_->metrics != nullptr) {
    MetricCells& cells = CellsFor(obs_->metrics);
    if (cells.attempted == nullptr) {
      cells.attempted = obs_->metrics->CounterCell(
          ProtocolKey("accesses_attempted", name()));
    }
    ++*cells.attempted;
    if (granted) {
      if (cells.granted == nullptr) {
        cells.granted = obs_->metrics->CounterCell(
            ProtocolKey("accesses_granted", name()));
      }
      ++*cells.granted;
    }
    std::uint64_t*& reason_cell = cells.access_reason[static_cast<int>(reason)];
    if (reason_cell == nullptr) {
      reason_cell =
          obs_->metrics->CounterCell(ReasonKey("access_reason", name(), reason));
    }
    ++*reason_cell;
  }
}

}  // namespace dynvote
