#include "core/registry.h"

#include "core/available_copy.h"
#include "core/jm_voting.h"
#include "core/dynamic_voting.h"
#include "core/mcv.h"

namespace dynvote {

const std::vector<std::string>& KnownProtocolNames() {
  static const std::vector<std::string> names = {
      "MCV", "DV", "LDV", "ODV", "TDV", "OTDV", "AC", "JM-DV"};
  return names;
}

const std::vector<std::string>& PaperProtocolNames() {
  static const std::vector<std::string> names = {"MCV", "DV",  "LDV",
                                                 "ODV", "TDV", "OTDV"};
  return names;
}

namespace {
template <typename T>
Result<std::unique_ptr<ConsistencyProtocol>> Upcast(
    Result<std::unique_ptr<T>> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<ConsistencyProtocol>(result.MoveValue());
}
}  // namespace

Result<std::unique_ptr<ConsistencyProtocol>> MakeProtocolByName(
    const std::string& name, std::shared_ptr<const Topology> topology,
    SiteSet placement) {
  if (name == "MCV") {
    return Upcast(MajorityConsensusVoting::Make(placement));
  }
  if (name == "DV") return Upcast(MakeDV(std::move(topology), placement));
  if (name == "LDV") return Upcast(MakeLDV(std::move(topology), placement));
  if (name == "ODV") return Upcast(MakeODV(std::move(topology), placement));
  if (name == "TDV") return Upcast(MakeTDV(std::move(topology), placement));
  if (name == "OTDV") {
    return Upcast(MakeOTDV(std::move(topology), placement));
  }
  if (name == "AC") return Upcast(AvailableCopy::Make(placement));
  if (name == "JM-DV") {
    return Upcast(JajodiaMutchlerVoting::Make(std::move(topology), placement));
  }
  return Status::InvalidArgument("unknown protocol name '" + name + "'");
}

}  // namespace dynvote
