#include "core/trace.h"

#include <sstream>

namespace dynvote {

std::string DecisionRecord::OperationName(Operation op) {
  switch (op) {
    case Operation::kRead:
      return "read";
    case Operation::kWrite:
      return "write";
    case Operation::kRecover:
      return "recover";
    case Operation::kRefresh:
      return "refresh";
  }
  return "?";
}

std::string DecisionRecord::ToString() const {
  std::ostringstream os;
  os << "#" << sequence << " " << protocol << " "
     << OperationName(operation);
  if (origin >= 0) os << "@" << origin;
  os << " " << decision.ToString();
  return os.str();
}

DecisionLog::DecisionLog(std::size_t capacity) : capacity_(capacity) {}

void DecisionLog::Record(DecisionRecord record) {
  record.sequence = ++total_;
  if (record.granted) ++granted_;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

void DecisionLog::Clear() {
  records_.clear();
  total_ = 0;
  granted_ = 0;
}

std::string DecisionLog::ToString() const {
  std::ostringstream os;
  for (const DecisionRecord& r : records_) os << r.ToString() << "\n";
  return os.str();
}

std::string DecisionLog::ToCsv() const {
  std::ostringstream os;
  os << "sequence,protocol,operation,origin,granted,by_tie_break,"
        "reachable,quorum_set,current_set,counted_set,prev_partition\n";
  for (const DecisionRecord& r : records_) {
    os << r.sequence << "," << r.protocol << ","
       << DecisionRecord::OperationName(r.operation) << "," << r.origin
       << "," << (r.granted ? 1 : 0) << ","
       << (r.decision.by_tie_break ? 1 : 0) << ",\""
       << r.decision.reachable_copies.ToString() << "\",\""
       << r.decision.quorum_set.ToString() << "\",\""
       << r.decision.current_set.ToString() << "\",\""
       << r.decision.counted_set.ToString() << "\",\""
       << r.decision.prev_partition.ToString() << "\"\n";
  }
  return os.str();
}

}  // namespace dynvote
