#include "core/available_copy.h"

namespace dynvote {

Result<std::unique_ptr<AvailableCopy>> AvailableCopy::Make(
    SiteSet placement) {
  auto store = ReplicaStore::Make(placement);
  if (!store.ok()) return store.status();
  return std::unique_ptr<AvailableCopy>(new AvailableCopy(store.MoveValue()));
}

AvailableCopy::AvailableCopy(ReplicaStore store)
    : store_(std::move(store)), current_(store_.placement()) {}

void AvailableCopy::Reset() {
  store_.Reset();
  current_ = store_.placement();
}

bool AvailableCopy::WouldGrant(const NetworkState& net, SiteId origin,
                               AccessType /*type*/) const {
  if (!net.IsSiteUp(origin)) return false;
  // Accessible iff a current copy is up and reachable: reads need current
  // data, writes need a current copy to serialise against.
  return net.ComponentOf(origin).Intersects(current_);
}

QuorumReason AvailableCopy::ClassifyUserAccess(const NetworkState& net,
                                               AccessType /*type*/,
                                               bool granted,
                                               SiteId /*origin*/) const {
  if (granted) return QuorumReason::kGrantedCurrentCopy;
  for (const SiteSet& group : net.Components()) {
    if (group.Intersects(store_.placement())) {
      return QuorumReason::kDeniedNoCurrentCopy;
    }
  }
  return QuorumReason::kDeniedNoCopies;
}

Status AvailableCopy::Read(const NetworkState& net, SiteId origin) {
  if (!net.IsSiteUp(origin)) {
    return Status::Unavailable("origin site is down");
  }
  SiteSet reachable = store_.CopiesAmong(net.ComponentOf(origin));
  counter_.Add(MessageKind::kProbe, store_.placement().Size());
  counter_.Add(MessageKind::kProbeReply, reachable.Size());
  if (!reachable.Intersects(current_)) {
    counter_.Add(MessageKind::kAbort, reachable.Size());
    return Status::NoQuorum("AC: no current copy reachable");
  }
  CommitInfo info;
  info.kind = CommitInfo::Kind::kRead;
  info.participants = reachable.Intersect(current_);
  info.source = info.participants.RankMax();
  info.version = store_.MaxVersion(info.participants);
  NotifyCommit(info);
  return Status::OK();
}

Status AvailableCopy::Write(const NetworkState& net, SiteId origin) {
  if (!net.IsSiteUp(origin)) {
    return Status::Unavailable("origin site is down");
  }
  SiteSet reachable = store_.CopiesAmong(net.ComponentOf(origin));
  counter_.Add(MessageKind::kProbe, store_.placement().Size());
  counter_.Add(MessageKind::kProbeReply, reachable.Size());
  if (!reachable.Intersects(current_)) {
    counter_.Add(MessageKind::kAbort, reachable.Size());
    return Status::NoQuorum("AC: no current copy reachable");
  }
  // Every reachable copy receives the whole new object and becomes
  // current; copies that are down miss the write and drop out of the
  // current set until they recover.
  SiteId source = reachable.Intersect(current_).RankMax();
  OpNumber op = store_.MaxOp(reachable) + 1;
  VersionNumber version = store_.MaxVersion(reachable) + 1;
  store_.Commit(reachable, op, version, reachable);
  counter_.Add(MessageKind::kCommit, reachable.Size());
  current_ = reachable;

  CommitInfo info;
  info.kind = CommitInfo::Kind::kWrite;
  info.participants = reachable;
  info.source = source;
  info.version = version;
  NotifyCommit(info);
  return Status::OK();
}

Status AvailableCopy::Recover(const NetworkState& net, SiteId site) {
  if (!store_.placement().Contains(site)) {
    return Status::InvalidArgument("recovering site holds no copy");
  }
  if (!net.IsSiteUp(site)) {
    return Status::Unavailable("recovering site is down");
  }
  if (current_.Contains(site)) return Status::OK();  // never missed a write
  SiteSet reachable = store_.CopiesAmong(net.ComponentOf(site));
  SiteSet sources = reachable.Intersect(current_);
  if (sources.Empty()) {
    return Status::NoQuorum("AC: no current copy reachable to recover from");
  }
  SiteId source = sources.RankMax();
  counter_.Add(MessageKind::kFileCopy, 1);
  *store_.mutable_state(site) = store_.state(source);
  current_.Add(site);

  CommitInfo info;
  info.kind = CommitInfo::Kind::kRecovery;
  info.participants = SiteSet{site};
  info.source = source;
  info.version = store_.state(site).version;
  NotifyCommit(info);
  return Status::OK();
}

void AvailableCopy::OnNetworkEvent(const NetworkState& net) {
  // Stale copies reintegrate as soon as a current copy is reachable (the
  // protocol family assumes sites notice each other's restarts).
  for (SiteId s : store_.placement().Minus(current_)) {
    if (net.IsSiteUp(s)) {
      Status st = Recover(net, s);
      (void)st;  // failure just means no current copy is up yet
    }
  }
}

}  // namespace dynvote
