// Majority Consensus Voting (Ellis 77, Gifford 79): the static baseline of
// the paper. The quorum is fixed when the system starts — a group may
// proceed iff it holds more than half of the total vote weight (or, with
// explicit Gifford-style read/write quorums, at least r or w votes).

#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/protocol.h"
#include "core/quorum.h"
#include "repl/replica_store.h"
#include "util/result.h"

namespace dynvote {

/// Configuration of a static voting protocol.
struct McvOptions {
  /// Per-site vote weights; default gives one vote per copy.
  VoteWeights weights;
  /// Resolution of exact-half splits (even total weight only). The
  /// default resolves ties in favour of the group holding the
  /// highest-ranked placement member — statically equivalent to the
  /// classic "give one site an extra vote" weight assignment. The paper
  /// does not spell its MCV tie rule out, but its Table 2 is only
  /// consistent with a tie-resolving static scheme: MCV in configuration
  /// E (4 copies) beats MCV in configuration A (3 of the same copies),
  /// which a strict 3-of-4 majority cannot do (every 2-failure that kills
  /// A's quorum also kills E's). Pass kNone for the textbook
  /// strict-majority rule.
  TieBreak tie_break = TieBreak::kLexicographic;
  /// Explicit read quorum r. Default: strict weight majority.
  std::optional<long long> read_quorum;
  /// Explicit write quorum w. Default: strict weight majority.
  /// If both quorums are given, Make() enforces Gifford's constraints
  /// r + w > W and 2w > W (W = total weight), which guarantee that any
  /// read quorum intersects any write quorum and any two write quorums
  /// intersect.
  std::optional<long long> write_quorum;
  /// Display name; defaults to "MCV" (or "WMCV" with non-uniform weights).
  std::string name;
};

/// Static (majority consensus / weighted) voting.
class MajorityConsensusVoting final : public ConsistencyProtocol {
 public:
  /// Creates the protocol for copies at `placement`.
  static Result<std::unique_ptr<MajorityConsensusVoting>> Make(
      SiteSet placement, McvOptions options = {});

  const std::string& name() const override { return name_; }
  SiteSet placement() const override { return store_.placement(); }
  bool uses_instantaneous_information() const override { return false; }

  bool WouldGrant(const NetworkState& net, SiteId origin,
                  AccessType type) const override;
  Status Read(const NetworkState& net, SiteId origin) override;
  Status Write(const NetworkState& net, SiteId origin) override;
  /// MCV has no recovery protocol: stale copies are refreshed by the next
  /// write whose quorum includes them. Recover is a no-op that reports
  /// whether `site` can currently reach a read quorum.
  Status Recover(const NetworkState& net, SiteId site) override;
  void Reset() override { store_.Reset(); }

  /// MCV's grant decision is purely static (weights and quorums are
  /// frozen at construction); the store epoch is conservative but cheap.
  std::uint64_t state_epoch() const override { return store_.epoch(); }

  /// Grants are static, but versions steer where commits read from, so
  /// the store fingerprint is the canonical state.
  bool AppendStateSignature(std::string* out) const override {
    store_.AppendCanonicalSignature(out);
    return true;
  }

  /// Quorums in force (after defaulting).
  long long read_quorum() const { return read_quorum_; }
  long long write_quorum() const { return write_quorum_; }

  /// Replica state, exposed for tests and the KV store.
  const ReplicaStore& store() const { return store_; }

 protected:
  /// Attributes grants to the static majority vs the static lexicographic
  /// tie rule, and denials to lost ties vs plain minorities.
  QuorumReason ClassifyUserAccess(const NetworkState& net, AccessType type,
                                  bool granted,
                                  SiteId origin) const override;

 private:
  MajorityConsensusVoting(ReplicaStore store, McvOptions options,
                          long long r, long long w);

  /// Reachable copies from `origin`, or empty if origin is down.
  SiteSet ReachableCopies(const NetworkState& net, SiteId origin) const;
  Status Access(const NetworkState& net, SiteId origin, AccessType type);

  ReplicaStore store_;
  VoteWeights weights_;
  TieBreak tie_break_;
  long long read_quorum_;
  long long write_quorum_;
  bool explicit_quorums_;
  std::string name_;
};

}  // namespace dynvote
