// Decision tracing: protocols can be attached to a DecisionLog that
// records every quorum decision (operation, origin, the Q/S/T/Pm sets and
// the outcome) in a bounded ring buffer. Used by tests to assert on
// decision sequences, by examples to narrate runs, and for debugging
// availability anomalies in long simulations.

#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/quorum.h"
#include "util/site_set.h"

namespace dynvote {

/// One recorded protocol decision.
struct DecisionRecord {
  /// Which entry point made the decision.
  enum class Operation { kRead, kWrite, kRecover, kRefresh };

  std::uint64_t sequence = 0;  // assigned by the log, 1-based
  std::string protocol;
  Operation operation = Operation::kRead;
  /// Requesting / recovering site, or -1 for a whole-group refresh.
  SiteId origin = -1;
  bool granted = false;
  /// Full quorum evaluation (zeroed for protocols without dynamic state).
  QuorumDecision decision;

  static std::string OperationName(Operation op);
  /// "#12 LDV write@0 GRANTED R={0, 1} ...".
  std::string ToString() const;
};

/// Bounded in-memory log of decisions; oldest entries are dropped first.
class DecisionLog {
 public:
  /// Creates a log keeping the most recent `capacity` records.
  explicit DecisionLog(std::size_t capacity = 1024);

  /// Appends a record (assigns its sequence number).
  void Record(DecisionRecord record);

  /// Records currently retained, oldest first.
  const std::deque<DecisionRecord>& records() const { return records_; }

  /// Total records ever recorded (>= records().size()).
  std::uint64_t total_recorded() const { return total_; }

  /// Number of granted / denied decisions ever recorded.
  std::uint64_t granted_count() const { return granted_; }
  std::uint64_t denied_count() const { return total_ - granted_; }

  void Clear();

  /// Multi-line rendering of the retained records.
  std::string ToString() const;

  /// CSV rendering: header plus one line per retained record.
  std::string ToCsv() const;

 private:
  std::size_t capacity_;
  std::deque<DecisionRecord> records_;
  std::uint64_t total_ = 0;
  std::uint64_t granted_ = 0;
};

}  // namespace dynvote
