// Dynamic voting with *regenerable witnesses* — the research direction
// the paper's conclusion points at ("More studies are still needed to
// investigate the inclusion of witness copies"), which Pâris pursued in
// later work: witnesses are cheap (they store only the (o, v, P)
// ensemble), so when a witness's host stays down the majority block can
// simply *replace* it with a fresh witness on a live site, restoring the
// quorum's slack without waiting out a two-week hardware repair.
//
// Mechanics, built on the lexicographic dynamic voting rule:
//
// * Membership M = fixed data copies D ∪ current witness set W. Quorum
//   decisions use the standard partition-set rule restricted to members;
//   an access additionally needs a current *data* copy reachable.
// * On every state refresh the majority block tracks, per member, how
//   many consecutive refreshes the member has been unreachable. When a
//   *witness* reaches the regeneration threshold, the block retires it
//   and instantiates a fresh witness on the highest-ranked reachable
//   non-member site (if any), committing the new membership through the
//   ordinary quorum machinery: the new partition set simply includes the
//   replacement and excludes the retiree.
// * A retired witness that later restarts holds a stale lineage and is
//   refused by the ordinary staleness rules; it never rejoins (its slot
//   may by then be occupied by its replacement).
//
// Safety matches LDV's: every commit is still a majority (or tie-winning
// half) of the previous block, so consecutive blocks intersect in a
// state-carrying member; regeneration only changes *which* sites carry
// the votes going forward.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "core/quorum.h"
#include "net/topology.h"
#include "repl/replica_store.h"
#include "util/result.h"

namespace dynvote {

/// Configuration of the regenerating protocol.
struct RegeneratingOptions {
  /// Consecutive unreachable refreshes after which a witness is replaced.
  int regeneration_threshold = 3;
  /// Sites allowed to host regenerated witnesses; empty = any site of the
  /// topology that holds no data copy.
  SiteSet witness_hosts;
  std::string name = "RLDV";
};

/// Lexicographic dynamic voting with regenerable witnesses.
class RegeneratingVoting final : public ConsistencyProtocol {
 public:
  /// `data_copies` hold the file; `initial_witnesses` are disjoint from
  /// them and hold state only.
  static Result<std::unique_ptr<RegeneratingVoting>> Make(
      std::shared_ptr<const Topology> topology, SiteSet data_copies,
      SiteSet initial_witnesses, RegeneratingOptions options = {});

  const std::string& name() const override { return name_; }
  /// Current membership (data + live witness slots); changes over time.
  SiteSet placement() const override { return members_; }
  SiteSet data_sites() const override { return data_copies_; }
  bool uses_instantaneous_information() const override { return true; }

  bool WouldGrant(const NetworkState& net, SiteId origin,
                  AccessType type) const override;
  Status Read(const NetworkState& net, SiteId origin) override;
  Status Write(const NetworkState& net, SiteId origin) override;
  Status Recover(const NetworkState& net, SiteId site) override;
  void OnNetworkEvent(const NetworkState& net) override;
  void Reset() override;

  /// Current witness set (observable for tests and benches).
  SiteSet witnesses() const { return witnesses_; }
  /// Number of regenerations performed so far.
  std::uint64_t regenerations() const { return regenerations_; }

  const ReplicaStore& store() const { return store_; }

 private:
  RegeneratingVoting(std::shared_ptr<const Topology> topology,
                     ReplicaStore store, SiteSet data_copies,
                     SiteSet initial_witnesses,
                     RegeneratingOptions options);

  QuorumDecision Evaluate(SiteSet group) const;
  Status Access(const NetworkState& net, SiteId origin, AccessType type);
  void ReintegrateGroup(const NetworkState& net, SiteSet group);
  /// Replaces timed-out witnesses with fresh ones hosted in `group`.
  void MaybeRegenerate(const NetworkState& net, SiteSet group);

  std::shared_ptr<const Topology> topology_;
  /// Backing state for every site of the topology (membership varies).
  ReplicaStore store_;
  SiteSet data_copies_;
  SiteSet initial_witnesses_;
  SiteSet witnesses_;
  SiteSet members_;
  RegeneratingOptions options_;
  std::string name_;
  std::vector<int> miss_count_;  // per site, consecutive refresh misses
  std::uint64_t regenerations_ = 0;
};

}  // namespace dynvote
