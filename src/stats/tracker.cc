#include "stats/tracker.h"

#include <algorithm>

#include "util/logging.h"

namespace dynvote {

AvailabilityTracker::AvailabilityTracker(SimTime start, SimTime batch_length,
                                         int num_batches)
    : start_(start),
      batch_length_(batch_length),
      num_batches_(num_batches),
      end_(start + batch_length * num_batches) {
  DYNVOTE_CHECK_MSG(batch_length > 0.0 && num_batches > 0,
                    "tracker needs a positive measurement window");
  batch_unavailable_time_.assign(num_batches_, 0.0);
  // The simulation starts with every site up: available until told
  // otherwise.
  last_time_ = 0.0;
  last_status_ = true;
}

void AvailabilityTracker::AccumulateUnavailable(SimTime from, SimTime to) {
  from = std::max(from, start_);
  to = std::min(to, end_);
  if (to <= from) return;

  unavailable_time_ += to - from;
  if (!in_period_) {
    in_period_ = true;
    ++num_periods_;
  }
  if (first_outage_ < 0.0) first_outage_ = from - start_;

  int first = static_cast<int>((from - start_) / batch_length_);
  int last = static_cast<int>((to - start_) / batch_length_);
  first = std::clamp(first, 0, num_batches_ - 1);
  last = std::clamp(last, 0, num_batches_ - 1);
  for (int b = first; b <= last; ++b) {
    SimTime lo = std::max(from, start_ + b * batch_length_);
    SimTime hi = std::min(to, start_ + (b + 1) * batch_length_);
    if (hi > lo) batch_unavailable_time_[b] += hi - lo;
  }
}

void AvailabilityTracker::Update(SimTime now, bool available) {
  DYNVOTE_CHECK_MSG(!finished_, "Update after Finish");
  DYNVOTE_CHECK_MSG(now >= last_time_, "time moved backwards");
  if (!last_status_) {
    AccumulateUnavailable(last_time_, now);
  }
  if (available) {
    // A transition to available closes any open unavailable period. The
    // period was only *counted* if part of it fell inside the window.
    in_period_ = false;
  }
  if (obs_ != nullptr && available != last_status_) {
    EmitTransition(now, available);
  }
  last_time_ = now;
  last_status_ = available;
}

void AvailabilityTracker::EmitTransition(SimTime now, bool available) {
  if (obs_->sink != nullptr) {
    TraceSink* sink = obs_->sink;
    sink->WriteAvail(now, obs_->seq, obs_->replication, protocol_,
                     trace_label_.Resolve(sink, protocol_), available);
  }
  if (obs_->metrics != nullptr) {
    std::string key = "avail_transitions{protocol=" + protocol_ + "}";
    obs_->metrics->Add(key);
    if (available) {
      // Closing an outage: record its whole duration (unclipped by the
      // measurement window — the histogram describes outages, the
      // batch accumulators describe the window).
      std::string hist = "outage_duration_days{protocol=" + protocol_ + "}";
      obs_->metrics->Observe(hist, now - status_since_);
    }
  }
  status_since_ = now;
}

void AvailabilityTracker::Finish(SimTime end) {
  DYNVOTE_CHECK_MSG(!finished_, "Finish called twice");
  DYNVOTE_CHECK_MSG(end >= last_time_, "Finish before the last Update");
  if (!last_status_) {
    AccumulateUnavailable(last_time_, end);
  }
  last_time_ = std::max(end, last_time_);
  finished_ = true;

  batch_unavailability_.reserve(num_batches_);
  for (double t : batch_unavailable_time_) {
    batch_unavailability_.push_back(t / batch_length_);
  }
}

double AvailabilityTracker::TotalTime() const {
  SimTime measured_end = std::min(last_time_, end_);
  return std::max(0.0, measured_end - start_);
}

double AvailabilityTracker::Unavailability() const {
  double total = TotalTime();
  return total > 0.0 ? unavailable_time_ / total : 0.0;
}

double AvailabilityTracker::MeanUnavailableDuration() const {
  return num_periods_ > 0 ? unavailable_time_ / num_periods_ : 0.0;
}

BatchStats AvailabilityTracker::Stats() const {
  return ComputeBatchStats(batch_unavailability_);
}

}  // namespace dynvote
