#include "stats/replication_stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/batch_means.h"

namespace dynvote {

std::string ReplicationSummary::ToString() const {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << mean << " ± " << ci95_halfwidth
     << " (R=" << num_samples << ")";
  if (num_censored > 0) os << ", censored=" << num_censored;
  return os.str();
}

void ReplicationStats::Add(double value) { values_.push_back(value); }

void ReplicationStats::AddCensored() { ++num_censored_; }

ReplicationSummary ReplicationStats::Summary() const {
  ReplicationSummary s;
  s.num_samples = static_cast<int>(values_.size());
  s.num_censored = num_censored_;
  if (values_.empty()) return s;

  double sum = 0.0;
  s.min = values_.front();
  s.max = values_.front();
  for (double v : values_) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / s.num_samples;

  if (s.num_samples < 2) return s;
  double sq = 0.0;
  for (double v : values_) {
    double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / (s.num_samples - 1));
  s.ci95_halfwidth = StudentT975(s.num_samples - 1) * s.stddev /
                     std::sqrt(static_cast<double>(s.num_samples));
  return s;
}

}  // namespace dynvote
