// Plain-text table formatting for the benchmark binaries, which print the
// same row/column grids as the paper's Tables 2 and 3.

#pragma once

#include <string>
#include <vector>

namespace dynvote {

/// A simple left-padded text table.
class TextTable {
 public:
  /// Sets the header row.
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal rule.
  void AddRule();

  /// Renders with columns sized to the widest cell.
  std::string ToString() const;

  /// Formats a value like the paper's tables: 6 decimal places, or `dash`
  /// when `value` < 0 (Table 3 prints "-" for configurations that were
  /// never unavailable).
  static std::string Fixed6(double value, const std::string& dash = "-");

  /// Formats with `digits` decimal places.
  static std::string Fixed(double value, int digits);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

}  // namespace dynvote
