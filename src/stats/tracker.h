// Time-weighted availability bookkeeping for one (protocol, placement)
// pair over one simulation run: total unavailable time, unavailable time
// per batch (feeding batch-means confidence intervals, Table 2) and the
// durations of individual unavailable periods (Table 3).

#pragma once

#include <string>
#include <vector>

#include "obs/context.h"
#include "sim/time.h"
#include "stats/batch_means.h"

namespace dynvote {

/// Accumulates the availability status of a replicated file over
/// simulated time.
///
/// Usage: construct with the measurement window and batch count, call
/// Update(now, available) at every instant the status may have changed
/// (the status is treated as piecewise-constant between calls: the value
/// passed at time t holds from t until the next call), and Finish(end)
/// once. Time outside [start, end) is ignored, which implements the
/// warm-up period.
class AvailabilityTracker {
 public:
  /// Tracks [start, start + num_batches * batch_length).
  AvailabilityTracker(SimTime start, SimTime batch_length, int num_batches);

  /// Reports the status from `now` onward. `now` must not decrease.
  void Update(SimTime now, bool available);

  /// Closes the final interval and any open unavailable period. Must be
  /// called exactly once, with `end` >= the last Update time.
  void Finish(SimTime end);

  /// --- results (valid after Finish) ----------------------------------
  SimTime window_start() const { return start_; }
  SimTime window_end() const { return end_; }
  /// Measured time (window length clipped to the Finish time).
  double TotalTime() const;
  /// Time the file was unavailable within the window.
  double UnavailableTime() const { return unavailable_time_; }
  /// UnavailableTime / TotalTime (0 for an empty window).
  double Unavailability() const;
  /// Number of unavailable periods intersecting the window.
  int NumUnavailablePeriods() const { return num_periods_; }
  /// Mean length of an unavailable period, in days (0 if none — printed
  /// as "-" by the table formatter, as in the paper's Table 3).
  double MeanUnavailableDuration() const;
  /// Per-batch unavailability values.
  const std::vector<double>& BatchUnavailabilities() const {
    return batch_unavailability_;
  }
  /// Time (within the window) at which the file first became unavailable,
  /// measured from the window start; -1 if it never did. The paper's
  /// reliability figure ("continuously available for more than three
  /// hundred years") is the distribution of this value.
  double TimeToFirstOutage() const { return first_outage_; }
  /// Batch-means summary of the unavailability.
  BatchStats Stats() const;

  /// Attaches an observability context: every status transition emits a
  /// kAvail trace event labelled `protocol`, and closed unavailable
  /// periods feed an outage-duration histogram. Not owned; null (the
  /// default) disables emission.
  void set_obs(ObsContext* obs, std::string protocol) {
    obs_ = obs;
    protocol_ = std::move(protocol);
  }

 private:
  /// Emits the kAvail transition event; called only when obs_ is set.
  void EmitTransition(SimTime now, bool available);
  /// Adds [from, to) of unavailable time into the batch accumulators.
  void AccumulateUnavailable(SimTime from, SimTime to);

  SimTime start_;
  SimTime batch_length_;
  int num_batches_;
  SimTime end_;

  SimTime last_time_ = 0.0;
  bool last_status_ = true;
  bool started_ = false;
  bool finished_ = false;

  double unavailable_time_ = 0.0;
  int num_periods_ = 0;
  bool in_period_ = false;  // an unavailable period overlaps the window
  double first_outage_ = -1.0;
  std::vector<double> batch_unavailable_time_;
  std::vector<double> batch_unavailability_;  // filled by Finish()

  ObsContext* obs_ = nullptr;
  std::string protocol_;
  TraceLabelCache trace_label_;  // the sink's token for protocol_
  SimTime status_since_ = 0.0;  // when last_status_ was entered
};

}  // namespace dynvote
