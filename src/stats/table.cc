#include "stats/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace dynvote {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::AddRule() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << (c == 0 ? "" : "  ") << std::left << std::setw(widths[c]) << cell;
    }
    os << "\n";
  };
  auto emit_rule = [&]() {
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c == 0 ? 0 : 2);
    }
    os << std::string(total, '-') << "\n";
  };

  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return os.str();
}

std::string TextTable::Fixed6(double value, const std::string& dash) {
  if (value < 0) return dash;
  return Fixed(value, 6);
}

std::string TextTable::Fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace dynvote
