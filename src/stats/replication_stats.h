// Cross-replication statistics. Where batch means (batch_means.h) cuts
// ONE long run into pseudo-independent batches, independent replications
// are *exactly* independent sample paths (each driven by its own RNG
// stream), so the classical Student-t interval over the per-replication
// values applies without the batch-correlation caveat. The accumulator
// also carries right-censored observations — a replication whose
// time-to-first-outage never occurred is knowledge ("longer than the
// horizon"), not a missing value, and must not silently bias the mean.

#pragma once

#include <string>
#include <vector>

namespace dynvote {

/// Summary of one scalar metric across R replications.
struct ReplicationSummary {
  /// Uncensored observations contributing to the moments.
  int num_samples = 0;
  /// Right-censored observations (recorded but excluded from moments).
  int num_censored = 0;
  double mean = 0.0;
  /// Sample standard deviation (0 with fewer than two samples).
  double stddev = 0.0;
  /// Student-t 95 % half-width over the samples (0 with fewer than two).
  double ci95_halfwidth = 0.0;
  /// Smallest and largest uncensored observation (0 when none).
  double min = 0.0;
  double max = 0.0;

  /// "0.001234 ± 0.000056 (R=8)"; appends ", censored=k" when k > 0.
  std::string ToString() const;
};

/// Accumulates one value per replication for one metric.
class ReplicationStats {
 public:
  /// Records replication r's observed value.
  void Add(double value);

  /// Records a right-censored observation: the event did not occur within
  /// the replication's horizon, so its value is known only to exceed it.
  void AddCensored();

  int num_samples() const { return static_cast<int>(values_.size()); }
  int num_censored() const { return num_censored_; }
  const std::vector<double>& values() const { return values_; }

  /// Mean, spread and 95 % CI over the uncensored values.
  ReplicationSummary Summary() const;

 private:
  std::vector<double> values_;
  int num_censored_ = 0;
};

}  // namespace dynvote
