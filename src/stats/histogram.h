// A small exact-quantile accumulator for simulation outputs (outage
// durations, times to first failure). Keeps every sample — the counts in
// this library are thousands, not billions — and computes exact order
// statistics, which beats fixed-bucket histograms for the heavy-tailed
// repair distributions of Table 1.

#pragma once

#include <string>
#include <vector>

namespace dynvote {

/// Collects samples; computes exact quantiles, mean and extrema.
class Histogram {
 public:
  void Add(double value);
  void AddCensored(double lower_bound);

  std::size_t count() const { return values_.size(); }
  std::size_t censored_count() const { return censored_; }
  bool Empty() const { return values_.empty(); }

  double Mean() const;
  double Min() const;
  double Max() const;

  /// Exact quantile by linear interpolation between order statistics;
  /// `q` in [0, 1]. Censored samples participate at their lower bounds,
  /// so quantiles are themselves lower bounds when censoring occurred.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  /// "n=25 (4 censored) mean=12.3 p50=8.1 p90=30.2 max=41.0".
  std::string Summary(int precision = 1) const;

 private:
  /// Sorts the backing store if dirty.
  void Ensure() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  std::size_t censored_ = 0;
};

}  // namespace dynvote
