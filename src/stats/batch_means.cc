#include "stats/batch_means.h"

#include <cmath>
#include <sstream>

namespace dynvote {

std::string BatchStats::ToString() const {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << mean << " ± " << ci95_halfwidth << " (n=" << num_batches
     << ")";
  return os.str();
}

double StudentT975(int df) {
  static const double kTable[] = {
      // df = 1 .. 30
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df < 1) return 0.0;
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

BatchStats ComputeBatchStats(const std::vector<double>& batch_values) {
  BatchStats stats;
  stats.num_batches = static_cast<int>(batch_values.size());
  if (stats.num_batches == 0) return stats;

  double sum = 0.0;
  for (double v : batch_values) sum += v;
  stats.mean = sum / stats.num_batches;

  if (stats.num_batches < 2) return stats;
  double sq = 0.0;
  for (double v : batch_values) {
    double d = v - stats.mean;
    sq += d * d;
  }
  stats.stddev = std::sqrt(sq / (stats.num_batches - 1));
  stats.ci95_halfwidth = StudentT975(stats.num_batches - 1) * stats.stddev /
                         std::sqrt(static_cast<double>(stats.num_batches));
  return stats;
}

}  // namespace dynvote
