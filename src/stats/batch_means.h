// Batch-means analysis, the technique the paper uses to attach 95 %
// confidence intervals to steady-state simulation estimates: the
// measurement window is cut into equal batches, the per-batch means are
// treated as (approximately) independent samples, and a Student-t interval
// is computed over them.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dynvote {

/// Summary of a batch-means estimate.
struct BatchStats {
  /// Number of batches contributing.
  int num_batches = 0;
  /// Mean of the per-batch values.
  double mean = 0.0;
  /// Sample standard deviation of the per-batch values.
  double stddev = 0.0;
  /// Half-width of the 95 % confidence interval for the mean
  /// (t-quantile * stddev / sqrt(n)); 0 when fewer than two batches.
  double ci95_halfwidth = 0.0;

  /// "0.001234 ± 0.000056 (n=20)".
  std::string ToString() const;
};

/// Two-sided Student-t 97.5 % quantile for `df` degrees of freedom
/// (exact table for df <= 30, 1.96 beyond).
double StudentT975(int df);

/// Computes batch statistics over per-batch values.
BatchStats ComputeBatchStats(const std::vector<double>& batch_values);

}  // namespace dynvote
