#include "stats/histogram.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace dynvote {

void Histogram::Add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

void Histogram::AddCensored(double lower_bound) {
  Add(lower_bound);
  ++censored_;
}

void Histogram::Ensure() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Histogram::Mean() const {
  DYNVOTE_CHECK_MSG(!Empty(), "Mean of empty histogram");
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / values_.size();
}

double Histogram::Min() const {
  DYNVOTE_CHECK_MSG(!Empty(), "Min of empty histogram");
  Ensure();
  return values_.front();
}

double Histogram::Max() const {
  DYNVOTE_CHECK_MSG(!Empty(), "Max of empty histogram");
  Ensure();
  return values_.back();
}

double Histogram::Quantile(double q) const {
  DYNVOTE_CHECK_MSG(!Empty(), "Quantile of empty histogram");
  DYNVOTE_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile outside [0, 1]");
  Ensure();
  if (values_.size() == 1) return values_[0];
  double position = q * (values_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(position);
  std::size_t hi = std::min(lo + 1, values_.size() - 1);
  double frac = position - lo;
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::string Histogram::Summary(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  os << "n=" << count();
  if (censored_ > 0) os << " (" << censored_ << " censored)";
  if (!Empty()) {
    os << " mean=" << Mean() << " p50=" << Median()
       << " p90=" << Quantile(0.9) << " max=" << Max();
  }
  return os.str();
}

}  // namespace dynvote
