#include "repl/message_bus.h"

#include <sstream>

namespace dynvote {

std::string MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kProbe:
      return "probe";
    case MessageKind::kProbeReply:
      return "probe_reply";
    case MessageKind::kStateRequest:
      return "state_request";
    case MessageKind::kStateReply:
      return "state_reply";
    case MessageKind::kCommit:
      return "commit";
    case MessageKind::kAbort:
      return "abort";
    case MessageKind::kFileCopy:
      return "file_copy";
    case MessageKind::kInstantRefresh:
      return "instant_refresh";
  }
  return "unknown";
}

std::uint64_t MessageCounter::Total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts_) sum += c;
  return sum;
}

std::uint64_t MessageCounter::ControlTotal() const {
  return Total() - count(MessageKind::kFileCopy);
}

void MessageCounter::Reset() {
  for (std::uint64_t& c : counts_) c = 0;
}

std::string MessageCounter::ToString() const {
  std::ostringstream os;
  for (int k = 0; k < kNumMessageKinds; ++k) {
    os << MessageKindName(static_cast<MessageKind>(k)) << "="
       << counts_[k] << " ";
  }
  os << "total=" << Total();
  return os.str();
}

}  // namespace dynvote
