// Message accounting for the protocols. The paper argues (Section 2.1)
// that the optimistic algorithms have "much the same message traffic
// overhead as majority consensus voting" while instantaneous dynamic
// voting needs a costly connection vector; bench/message_overhead
// reproduces that comparison. Protocols record every simulated message
// here; the simulation driver reads the totals.

#pragma once

#include <cstdint>
#include <string>

namespace dynvote {

/// Category of a simulated message exchange.
enum class MessageKind : int {
  /// Initial broadcast probing which sites answer (START, one per site
  /// in the replication set).
  kProbe = 0,
  /// Reply to a probe, one per reachable copy.
  kProbeReply = 1,
  /// Request for a copy's (o, v, P) ensemble.
  kStateRequest = 2,
  /// Reply carrying the ensemble.
  kStateReply = 3,
  /// COMMIT carrying the new ensemble to a participant.
  kCommit = 4,
  /// ABORT notification.
  kAbort = 5,
  /// Whole-file transfer to a recovering copy.
  kFileCopy = 6,
  /// State refresh forced by instantaneous ("connection vector")
  /// protocols on a network event.
  kInstantRefresh = 7,
};

inline constexpr int kNumMessageKinds = 8;

/// Human-readable kind name.
std::string MessageKindName(MessageKind kind);

/// Tallies messages by kind.
class MessageCounter {
 public:
  void Add(MessageKind kind, std::uint64_t n = 1) {
    counts_[static_cast<int>(kind)] += n;
  }

  std::uint64_t count(MessageKind kind) const {
    return counts_[static_cast<int>(kind)];
  }

  /// Sum over all kinds.
  std::uint64_t Total() const;

  /// Total excluding file copies (control traffic only).
  std::uint64_t ControlTotal() const;

  void Reset();

  /// "probe=12 probe_reply=9 ... total=55".
  std::string ToString() const;

 private:
  std::uint64_t counts_[kNumMessageKinds] = {};
};

}  // namespace dynvote
