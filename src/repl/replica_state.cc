#include "repl/replica_state.h"

#include <sstream>

namespace dynvote {

std::string ReplicaState::ToString() const {
  std::ostringstream os;
  os << "o=" << op_number << " v=" << version
     << " P=" << partition_set.ToString();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ReplicaState& state) {
  return os << state.ToString();
}

}  // namespace dynvote
