#include "repl/replica_store.h"

#include <algorithm>

#include "util/logging.h"

namespace dynvote {

Result<ReplicaStore> ReplicaStore::Make(SiteSet placement) {
  if (placement.Empty()) {
    return Status::InvalidArgument("placement must contain at least one site");
  }
  return ReplicaStore(placement);
}

ReplicaStore::ReplicaStore(SiteSet placement) : placement_(placement) {
  states_.resize(placement.RankMin() + 1);
  Reset();
}

void ReplicaStore::Reset() {
  for (SiteId s : placement_) {
    states_[s] = ReplicaState{1, 1, placement_};
  }
  ++epoch_;
}

const ReplicaState& ReplicaStore::state(SiteId site) const {
  DYNVOTE_CHECK_MSG(placement_.Contains(site),
                    "queried a site that holds no copy");
  return states_[site];
}

ReplicaState* ReplicaStore::mutable_state(SiteId site) {
  DYNVOTE_CHECK_MSG(placement_.Contains(site),
                    "mutated a site that holds no copy");
  // Conservative: the caller may write through the pointer, so every
  // handout invalidates memoized decisions.
  ++epoch_;
  return &states_[site];
}

OpNumber ReplicaStore::MaxOp(SiteSet among) const {
  SiteSet copies = CopiesAmong(among);
  DYNVOTE_CHECK_MSG(!copies.Empty(), "MaxOp over a set with no copies");
  OpNumber best = 0;
  for (SiteId s : copies) best = std::max(best, states_[s].op_number);
  return best;
}

VersionNumber ReplicaStore::MaxVersion(SiteSet among) const {
  SiteSet copies = CopiesAmong(among);
  DYNVOTE_CHECK_MSG(!copies.Empty(), "MaxVersion over a set with no copies");
  VersionNumber best = 0;
  for (SiteId s : copies) best = std::max(best, states_[s].version);
  return best;
}

SiteSet ReplicaStore::MaxOpSites(SiteSet among) const {
  SiteSet copies = CopiesAmong(among);
  if (copies.Empty()) return SiteSet();
  OpNumber best = MaxOp(copies);
  SiteSet out;
  for (SiteId s : copies) {
    if (states_[s].op_number == best) out.Add(s);
  }
  return out;
}

SiteSet ReplicaStore::MaxVersionSites(SiteSet among) const {
  SiteSet copies = CopiesAmong(among);
  if (copies.Empty()) return SiteSet();
  VersionNumber best = MaxVersion(copies);
  SiteSet out;
  for (SiteId s : copies) {
    if (states_[s].version == best) out.Add(s);
  }
  return out;
}

namespace {
/// Rank of `value` among the sorted distinct values in `sorted` (which
/// must contain it).
int RankOf(const std::vector<std::int64_t>& sorted, std::int64_t value) {
  return static_cast<int>(
      std::lower_bound(sorted.begin(), sorted.end(), value) -
      sorted.begin());
}
}  // namespace

void ReplicaStore::AppendCanonicalSignature(std::string* out) const {
  std::vector<std::int64_t> ops, versions;
  for (SiteId s : placement_) {
    ops.push_back(states_[s].op_number);
    versions.push_back(states_[s].version);
  }
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  std::sort(versions.begin(), versions.end());
  versions.erase(std::unique(versions.begin(), versions.end()),
                 versions.end());
  for (SiteId s : placement_) {
    const ReplicaState& st = states_[s];
    out->push_back('o');
    *out += std::to_string(RankOf(ops, st.op_number));
    out->push_back('v');
    *out += std::to_string(RankOf(versions, st.version));
    out->push_back('p');
    *out += std::to_string(st.partition_set.mask());
    out->push_back(';');
  }
}

void ReplicaStore::Commit(SiteSet participants, OpNumber op,
                          VersionNumber version, SiteSet new_partition_set) {
  for (SiteId s : CopiesAmong(participants)) {
    states_[s] = ReplicaState{op, version, new_partition_set};
  }
  ++epoch_;
}

}  // namespace dynvote
