// The per-copy state ensemble of the paper (Section 2.1): every physical
// copy of a replicated file maintains an operation number, a version
// number and a partition set.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "util/site_set.h"

namespace dynvote {

/// Monotonic counter of successful operations a copy has taken part in.
using OpNumber = std::int64_t;

/// Monotonic counter identifying the last write a copy has received.
using VersionNumber = std::int64_t;

/// State ensemble attached to one physical copy.
///
/// * `op_number` (o_i): incremented at every successful operation the copy
///   participates in — reads, writes and recoveries alike. It identifies
///   the most recent majority-block lineage without forcing a file copy on
///   every read the way a version bump would (paper §2.1's discussion of
///   the operation-number / recovery-time trade-off).
/// * `version` (v_i): identifies the last successful *write*; copies with
///   the maximal version among reachable sites are the current copies.
/// * `partition_set` (P_i): the sites that took part in the most recent
///   successful operation — the previous majority block. New quorums are
///   majorities of this set.
struct ReplicaState {
  OpNumber op_number = 1;
  VersionNumber version = 1;
  SiteSet partition_set;

  friend bool operator==(const ReplicaState& a,
                         const ReplicaState& b) = default;

  /// "o=8 v=8 P={0, 1, 2}".
  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const ReplicaState& state);

}  // namespace dynvote
