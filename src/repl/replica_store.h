// Holds the state ensembles of all physical copies of one replicated file
// and implements the bulk queries the voting algorithms are written in
// terms of: Q (maximal-operation-number sites), S (maximal-version sites)
// and the COMMIT that installs a new partition set.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "repl/replica_state.h"
#include "util/result.h"
#include "util/site_set.h"

namespace dynvote {

/// State ensembles for the copies of one replicated file.
///
/// The store is indexed by global SiteId; only sites in `placement` hold
/// copies. Querying a non-placement site is a programming error (checked).
class ReplicaStore {
 public:
  /// Creates a store for copies at `placement` (must be non-empty) in the
  /// paper's initial state: o = v = 1, partition set = placement.
  static Result<ReplicaStore> Make(SiteSet placement);

  /// Returns every copy to the initial state.
  void Reset();

  SiteSet placement() const { return placement_; }
  int num_copies() const { return placement_.Size(); }

  /// Monotonic counter bumped by every mutation path (Commit, Reset and
  /// each mutable_state handout). Two observations with equal epoch() saw
  /// identical replica state, so derived quorum decisions may be memoized
  /// keyed on it.
  std::uint64_t epoch() const { return epoch_; }

  /// State of the copy at `site`; `site` must be in placement().
  const ReplicaState& state(SiteId site) const;
  ReplicaState* mutable_state(SiteId site);

  /// Restricts `sites` to sites actually holding copies.
  SiteSet CopiesAmong(SiteSet sites) const {
    return sites.Intersect(placement_);
  }

  /// Maximum operation number among copies in `among` (∩ placement).
  /// `among` must contain at least one copy.
  OpNumber MaxOp(SiteSet among) const;

  /// Maximum version among copies in `among` (∩ placement).
  VersionNumber MaxVersion(SiteSet among) const;

  /// Q of the paper: copies in `among` whose operation number equals the
  /// maximum over `among`. Empty iff `among` holds no copies.
  SiteSet MaxOpSites(SiteSet among) const;

  /// S of the paper: copies in `among` whose version equals the maximum
  /// over `among`. Empty iff `among` holds no copies.
  SiteSet MaxVersionSites(SiteSet among) const;

  /// COMMIT of the paper: installs `op`/`version`/`new_partition_set` at
  /// every copy in `participants` (∩ placement).
  void Commit(SiteSet participants, OpNumber op, VersionNumber version,
              SiteSet new_partition_set);

  /// Appends a canonical fingerprint of every copy's ensemble to `out`.
  /// Operation and version numbers are replaced by their rank among the
  /// distinct values present, so two stores whose copies agree on the
  /// *relative* order of operation numbers and versions (the only thing
  /// the quorum test consumes) produce identical fingerprints even when
  /// the absolute counters differ. Used by the model checker to merge
  /// equivalent states (src/check/).
  void AppendCanonicalSignature(std::string* out) const;

 private:
  explicit ReplicaStore(SiteSet placement);

  SiteSet placement_;
  std::vector<ReplicaState> states_;  // indexed by SiteId, dense to max id
  std::uint64_t epoch_ = 0;
};

}  // namespace dynvote
