#include "util/distributions.h"

#include <sstream>

namespace dynvote {

Result<std::unique_ptr<Distribution>> ConstantDistribution::Make(
    double value) {
  if (value < 0.0) {
    return Status::InvalidArgument("constant distribution value < 0");
  }
  return std::unique_ptr<Distribution>(new ConstantDistribution(value));
}

double ConstantDistribution::Sample(Rng* /*rng*/) const { return value_; }

std::string ConstantDistribution::ToString() const {
  std::ostringstream os;
  os << "Const(" << value_ << ")";
  return os.str();
}

Result<std::unique_ptr<Distribution>> ExponentialDistribution::Make(
    double mean) {
  if (mean <= 0.0) {
    return Status::InvalidArgument("exponential mean must be > 0");
  }
  return std::unique_ptr<Distribution>(new ExponentialDistribution(mean));
}

double ExponentialDistribution::Sample(Rng* rng) const {
  return rng->NextExponential(mean_);
}

std::string ExponentialDistribution::ToString() const {
  std::ostringstream os;
  os << "Exp(mean=" << mean_ << ")";
  return os.str();
}

Result<std::unique_ptr<Distribution>> ShiftedExponentialDistribution::Make(
    double offset, double exp_mean) {
  if (offset < 0.0) {
    return Status::InvalidArgument("shifted-exponential offset < 0");
  }
  if (exp_mean < 0.0) {
    return Status::InvalidArgument("shifted-exponential mean < 0");
  }
  return std::unique_ptr<Distribution>(
      new ShiftedExponentialDistribution(offset, exp_mean));
}

double ShiftedExponentialDistribution::Sample(Rng* rng) const {
  double exp_part = exp_mean_ > 0.0 ? rng->NextExponential(exp_mean_) : 0.0;
  return offset_ + exp_part;
}

std::string ShiftedExponentialDistribution::ToString() const {
  std::ostringstream os;
  os << "Const(" << offset_ << ")+Exp(mean=" << exp_mean_ << ")";
  return os.str();
}

Result<std::unique_ptr<Distribution>> MixtureDistribution::Make(
    double p_first, std::unique_ptr<Distribution> first,
    std::unique_ptr<Distribution> second) {
  if (p_first < 0.0 || p_first > 1.0) {
    return Status::InvalidArgument("mixture probability outside [0, 1]");
  }
  if (first == nullptr || second == nullptr) {
    return Status::InvalidArgument("mixture component is null");
  }
  return std::unique_ptr<Distribution>(new MixtureDistribution(
      p_first, std::move(first), std::move(second)));
}

double MixtureDistribution::Sample(Rng* rng) const {
  return rng->NextBernoulli(p_first_) ? first_->Sample(rng)
                                      : second_->Sample(rng);
}

double MixtureDistribution::Mean() const {
  return p_first_ * first_->Mean() + (1.0 - p_first_) * second_->Mean();
}

std::string MixtureDistribution::ToString() const {
  std::ostringstream os;
  os << "Mix(p=" << p_first_ << ", " << first_->ToString() << ", "
     << second_->ToString() << ")";
  return os.str();
}

}  // namespace dynvote
