#include "util/rng.h"

#include <cmath>

namespace dynvote {

namespace {
constexpr std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits scaled into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpenLow() { return 1.0 - NextDouble(); }

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  // Lemire's unbiased bounded sampling.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  return -mean * std::log(NextDoubleOpenLow());
}

Rng Rng::Split() {
  SplitMix64 sm(Next() ^ 0xA5A5A5A5A5A5A5A5ULL);
  return Rng(sm.Next());
}

}  // namespace dynvote
