// Clang Thread Safety Analysis annotations and the capability-annotated
// mutex the whole tree is required to use (dynvote_lint's raw-mutex rule
// bans std::mutex everywhere else). Under clang the tree compiles with
// -Wthread-safety -Werror=thread-safety, so an unguarded access to a
// DYNVOTE_GUARDED_BY member is a build break; under gcc every macro
// expands to nothing and Mutex is a zero-cost veneer over std::mutex.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DYNVOTE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DYNVOTE_THREAD_ANNOTATION
#define DYNVOTE_THREAD_ANNOTATION(x)  // no thread-safety analysis
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define DYNVOTE_CAPABILITY(x) DYNVOTE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in
/// its destructor.
#define DYNVOTE_SCOPED_CAPABILITY DYNVOTE_THREAD_ANNOTATION(scoped_lockable)

/// Declares that a member is protected by the given mutex: every read or
/// write must happen with the capability held.
#define DYNVOTE_GUARDED_BY(x) DYNVOTE_THREAD_ANNOTATION(guarded_by(x))

/// Like DYNVOTE_GUARDED_BY for the data a pointer member points at.
#define DYNVOTE_PT_GUARDED_BY(x) DYNVOTE_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function must be called with the capability already held.
#define DYNVOTE_REQUIRES(...) \
  DYNVOTE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function must be called with the capability NOT held (it acquires
/// internally; calling with it held would self-deadlock).
#define DYNVOTE_EXCLUDES(...) \
  DYNVOTE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define DYNVOTE_ACQUIRE(...) \
  DYNVOTE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a held capability.
#define DYNVOTE_RELEASE(...) \
  DYNVOTE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define DYNVOTE_TRY_ACQUIRE(result, ...) \
  DYNVOTE_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// The function returns a reference to the given capability.
#define DYNVOTE_RETURN_CAPABILITY(x) \
  DYNVOTE_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function out of analysis (initialization, test scaffolding).
#define DYNVOTE_NO_THREAD_SAFETY_ANALYSIS \
  DYNVOTE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dynvote {

/// std::mutex with the capability annotation the analysis needs. The
/// lowercase lock()/unlock() aliases satisfy BasicLockable so CondVar
/// (std::condition_variable_any) can wait on the annotated mutex
/// directly — the unlock/relock inside wait() happens in a system header
/// and is invisible to (and ignored by) the analysis, which sees the
/// capability as held across the whole wait, exactly the caller's view.
class DYNVOTE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DYNVOTE_ACQUIRE() { mu_.lock(); }
  void Unlock() DYNVOTE_RELEASE() { mu_.unlock(); }
  bool TryLock() DYNVOTE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling, required by std::condition_variable_any.
  void lock() DYNVOTE_ACQUIRE() { mu_.lock(); }
  void unlock() DYNVOTE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex; the scoped-capability annotation lets the
/// analysis treat the guarded region as holding the mutex.
class DYNVOTE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DYNVOTE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DYNVOTE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() must be called with the
/// mutex held and returns with it held; the REQUIRES annotation makes
/// the analysis enforce that at every call site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Spurious wakeups are possible: always wait in a predicate loop.
  void Wait(Mutex& mu) DYNVOTE_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dynvote
