#include "util/site_set.h"

#include <sstream>

namespace dynvote {

std::string SiteSet::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (SiteId s : *this) {
    if (!first) os << ", ";
    os << s;
    first = false;
  }
  os << '}';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, SiteSet set) {
  return os << set.ToString();
}

}  // namespace dynvote
