// Result<T>: a value or an error Status, in the style of arrow::Result.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace dynvote {

/// Holds either a value of type T or an error Status.
///
///   Result<int> r = ParsePort(text);
///   if (!r.ok()) return r.status();
///   int port = *r;
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit by design, mirroring
  /// arrow::Result, so `return value;` works in functions returning Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accesses the value; must hold a value.
  const T& operator*() const& {
    assert(ok());
    return *value_;
  }
  T& operator*() & {
    assert(ok());
    return *value_;
  }
  T&& operator*() && {
    assert(ok());
    return std::move(*value_);
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Moves the value out; must hold a value.
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace dynvote

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status to the caller.
#define DYNVOTE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(*tmp)

#define DYNVOTE_ASSIGN_OR_RETURN(lhs, expr)                                 \
  DYNVOTE_ASSIGN_OR_RETURN_IMPL(DYNVOTE_CONCAT_(_result_, __LINE__), lhs,   \
                                expr)

#define DYNVOTE_CONCAT_INNER_(a, b) a##b
#define DYNVOTE_CONCAT_(a, b) DYNVOTE_CONCAT_INNER_(a, b)
