// Minimal leveled logging and debug-check macros. The library core is
// silent by default; examples and benches may raise the level.

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dynvote {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to
/// kWarning so library internals stay quiet in tests and benches.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);

}  // namespace internal
}  // namespace dynvote

#define DYNVOTE_LOG(level)                                             \
  ::dynvote::internal::LogMessage(::dynvote::LogLevel::k##level,       \
                                  __FILE__, __LINE__)

/// Aborts with a diagnostic when `expr` is false. Active in all build
/// types: protocol invariants guard data consistency, so violating one is
/// never recoverable.
#define DYNVOTE_CHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::dynvote::internal::CheckFailed(#expr, __FILE__, __LINE__, ""); \
    }                                                                  \
  } while (false)

#define DYNVOTE_CHECK_MSG(expr, msg)                                    \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dynvote::internal::CheckFailed(#expr, __FILE__, __LINE__, msg); \
    }                                                                   \
  } while (false)
