// Minimal leveled logging and debug-check macros. The library core is
// silent by default; examples and benches may raise the level.
//
// The header deliberately avoids <iostream>/<sstream>: it is included by
// nearly every TU in the library, and stream machinery (static iostream
// initializers, template bloat) belongs in logging.cc. Messages buffer
// into a plain std::string via overloads below; anything arithmetic goes
// through std::to_string.

#pragma once

#include <string>
#include <string_view>
#include <type_traits>

namespace dynvote {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to
/// kWarning so library internals stay quiet in tests and benches.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  /// Writes the buffered line to stderr (in logging.cc).
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  LogMessage& operator<<(std::string_view value) {
    if (enabled_) buffer_.append(value);
    return *this;
  }
  LogMessage& operator<<(const char* value) {
    return *this << std::string_view(value);
  }
  LogMessage& operator<<(const std::string& value) {
    return *this << std::string_view(value);
  }
  LogMessage& operator<<(char value) {
    if (enabled_) buffer_.push_back(value);
    return *this;
  }
  LogMessage& operator<<(bool value) {
    return *this << std::string_view(value ? "true" : "false");
  }
  /// Numbers format via std::to_string; the exact-match overloads above
  /// win over this template for char/bool/string types.
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  LogMessage& operator<<(T value) {
    if (enabled_) buffer_.append(std::to_string(value));
    return *this;
  }
  /// Anything with a ToString() member (SiteSet, Status, ...).
  template <typename T,
            typename = decltype(std::declval<const T&>().ToString()),
            typename = void>
  LogMessage& operator<<(const T& value) {
    if (enabled_) buffer_.append(value.ToString());
    return *this;
  }

 private:
  bool enabled_;
  std::string buffer_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);

}  // namespace internal
}  // namespace dynvote

#define DYNVOTE_LOG(level)                                             \
  ::dynvote::internal::LogMessage(::dynvote::LogLevel::k##level,       \
                                  __FILE__, __LINE__)

/// Aborts with a diagnostic when `expr` is false. Active in all build
/// types: protocol invariants guard data consistency, so violating one is
/// never recoverable.
#define DYNVOTE_CHECK(expr)                                            \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::dynvote::internal::CheckFailed(#expr, __FILE__, __LINE__, ""); \
    }                                                                  \
  } while (false)

#define DYNVOTE_CHECK_MSG(expr, msg)                                    \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dynvote::internal::CheckFailed(#expr, __FILE__, __LINE__, msg); \
    }                                                                   \
  } while (false)

/// Debug-only checks for hot-path assertions too costly for Release:
/// full DYNVOTE_CHECKs under !NDEBUG, compiled (for well-formedness) but
/// never evaluated otherwise.
#ifndef NDEBUG
#define DYNVOTE_DCHECK(expr) DYNVOTE_CHECK(expr)
#define DYNVOTE_DCHECK_MSG(expr, msg) DYNVOTE_CHECK_MSG(expr, msg)
#else
#define DYNVOTE_DCHECK(expr)                 \
  do {                                       \
    if (false && (expr)) { /* not reached */ \
    }                                        \
  } while (false)
#define DYNVOTE_DCHECK_MSG(expr, msg)                        \
  do {                                                       \
    if (false && (expr)) {                                   \
      static_cast<void>(msg); /* compiled, not evaluated */  \
    }                                                        \
  } while (false)
#endif
