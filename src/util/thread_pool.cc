#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dynvote {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  DYNVOTE_CHECK_MSG(task != nullptr, "null task submitted to ThreadPool");
  {
    MutexLock lock(mutex_);
    DYNVOTE_CHECK_MSG(!shutting_down_, "Submit on a shut-down ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  std::exception_ptr pending;
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) all_done_.Wait(mutex_);
    pending = std::exchange(first_exception_, nullptr);
  }
  if (pending) std::rethrow_exception(pending);
}

void ThreadPool::Shutdown() {
  bool uncollected = false;
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) all_done_.Wait(mutex_);
    if (shutting_down_) return;  // second Shutdown(): workers already joined
    shutting_down_ = true;
    if (first_exception_ != nullptr) {
      uncollected = true;
      first_exception_ = nullptr;
    }
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  // Log after the critical section (and the joins): stream logging
  // under a lock serializes every producer behind the I/O
  // (lock-hygiene).
  if (uncollected) {
    DYNVOTE_LOG(Warning)
        << "ThreadPool shut down with an uncollected task exception";
  }
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mutex_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(mutex_);
      if (first_exception_ == nullptr) {
        first_exception_ = std::current_exception();
      }
    }
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace dynvote
