#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dynvote {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DYNVOTE_CHECK_MSG(task != nullptr, "null task submitted to ThreadPool");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DYNVOTE_CHECK_MSG(!shutting_down_, "Submit on a shut-down ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dynvote
