// Status: error propagation without exceptions, in the style used by the
// large C++ database codebases (Arrow, RocksDB, LevelDB). Public library
// entry points return Status (or Result<T>, see util/result.h) instead of
// throwing.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dynvote {

/// Machine-readable category of a Status.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  /// A quorum could not be assembled: the request originated outside the
  /// majority partition. This is the "expected" failure of every voting
  /// protocol and is reported as a distinct code so callers can retry.
  kNoQuorum = 1,
  /// The target site (or another required participant) is down.
  kUnavailable = 2,
  /// Malformed argument (unknown site, empty placement, bad weights, ...).
  kInvalidArgument = 3,
  /// Internal invariant violated; indicates a bug, never expected behaviour.
  kInternal = 4,
  /// Requested entity does not exist (e.g. key lookup in the KV store).
  kNotFound = 5,
  /// Operation is not implemented by this protocol (e.g. witnesses cannot
  /// serve reads of file contents).
  kNotSupported = 6,
};

/// Human-readable name of a StatusCode ("OK", "NoQuorum", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation: a code plus, for errors, a message.
///
/// Ok statuses carry no allocation; error statuses own a short message.
/// Statuses are cheap to move and compare. Typical use:
///
///   Status s = protocol->Write(site, ...);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NoQuorum(std::string msg) {
    return Status(StatusCode::kNoQuorum, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// True iff the status carries the given error code.
  bool Is(StatusCode code) const { return code_ == code; }
  bool IsNoQuorum() const { return Is(StatusCode::kNoQuorum); }
  bool IsUnavailable() const { return Is(StatusCode::kUnavailable); }
  bool IsInvalidArgument() const { return Is(StatusCode::kInvalidArgument); }
  bool IsInternal() const { return Is(StatusCode::kInternal); }
  bool IsNotFound() const { return Is(StatusCode::kNotFound); }
  bool IsNotSupported() const { return Is(StatusCode::kNotSupported); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace dynvote

/// Propagates a non-OK Status to the caller.
#define DYNVOTE_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::dynvote::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)
