// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64
// rather than relying on std::mt19937 so that (a) streams are cheap to
// split — each stochastic process in the simulation gets an independent
// stream, which makes common-random-number comparisons across protocols
// reproducible — and (b) results are identical across standard libraries.

#pragma once

#include <cstdint>

namespace dynvote {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with 2^256 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Distinct seeds give independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x8899AABBCCDDEEFFULL);

  /// Returns the next 64 random bits.
  std::uint64_t Next();

  /// UniformRandomBitGenerator interface, so <random> distributions work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in (0, 1] — safe as input to -log(u).
  double NextDoubleOpenLow();

  /// Uniform integer in [0, bound) using Lemire's method. bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Creates a generator whose stream is statistically independent of this
  /// one (jump-free splitting via a SplitMix64 hash of fresh output).
  Rng Split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dynvote
