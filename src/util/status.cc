#include "util/status.h"

namespace dynvote {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNoQuorum:
      return "NoQuorum";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace dynvote
