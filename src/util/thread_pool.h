// A fixed-size worker pool for embarrassingly parallel simulation work
// (independent replications, parameter sweeps). Deliberately minimal: no
// futures, no work stealing, no task priorities — callers submit plain
// closures and Wait() for the queue to drain. Determinism is the callers'
// responsibility and is achieved by writing results into pre-assigned
// slots, never by relying on completion order.

#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace dynvote {

/// A fixed set of worker threads consuming a FIFO task queue.
///
/// Threading: Submit() and Wait() may be called from any thread, though
/// the intended pattern is one coordinator thread submitting and waiting.
/// A task may Submit() further tasks. If a task throws, the first
/// exception (in completion order) is captured and rethrown from the
/// next Wait(); the remaining tasks still run to completion.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Equivalent to Shutdown(); a pending captured exception that no
  /// Wait() collected is dropped with a warning.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (the queue is unbounded). It is a
  /// fatal error to Submit() after Shutdown().
  void Submit(std::function<void()> task) DYNVOTE_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished running, then
  /// rethrows the first exception any task threw since the last Wait()
  /// (if any). The pool stays usable after a rethrow: the exception slot
  /// is cleared and further Submit()/Wait() cycles behave normally.
  void Wait() DYNVOTE_EXCLUDES(mutex_);

  /// Drains the queue, joins all workers, and marks the pool shut down.
  /// Idempotent: calling Shutdown() again (or destroying the pool after
  /// an explicit Shutdown()) is a no-op. Never throws — an uncollected
  /// task exception is logged and dropped.
  void Shutdown() DYNVOTE_EXCLUDES(mutex_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The hardware concurrency, with a floor of 1 (the standard permits
  /// hardware_concurrency() == 0 when unknown).
  static int DefaultThreads();

 private:
  void WorkerLoop() DYNVOTE_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ DYNVOTE_GUARDED_BY(mutex_);
  std::size_t in_flight_ DYNVOTE_GUARDED_BY(mutex_) = 0;  // queued + running
  bool shutting_down_ DYNVOTE_GUARDED_BY(mutex_) = false;
  /// First exception thrown by a task since the last Wait(); later ones
  /// are dropped (their tasks still complete).
  std::exception_ptr first_exception_ DYNVOTE_GUARDED_BY(mutex_);
  /// Written by the constructor, joined+cleared by Shutdown(); otherwise
  /// read-only, so it needs no guard (coordinator-confined).
  // dynvote-lint: allow(guarded-by)
  std::vector<std::thread> workers_;
};

}  // namespace dynvote
