// A fixed-size worker pool for embarrassingly parallel simulation work
// (independent replications, parameter sweeps). Deliberately minimal: no
// futures, no work stealing, no task priorities — callers submit plain
// closures and Wait() for the queue to drain. Determinism is the callers'
// responsibility and is achieved by writing results into pre-assigned
// slots, never by relying on completion order.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dynvote {

/// A fixed set of worker threads consuming a FIFO task queue.
///
/// Threading: Submit() and Wait() may be called from any thread, though
/// the intended pattern is one coordinator thread submitting and waiting.
/// Tasks must not throw; a task may Submit() further tasks.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (the queue is unbounded).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The hardware concurrency, with a floor of 1 (the standard permits
  /// hardware_concurrency() == 0 when unknown).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dynvote
