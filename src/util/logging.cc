#include "util/logging.h"

#include <atomic>
#include <iostream>

namespace dynvote {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    buffer_.append("[");
    buffer_.append(LevelName(level));
    buffer_.append(" ");
    buffer_.append(file);
    buffer_.append(":");
    buffer_.append(std::to_string(line));
    buffer_.append("] ");
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << buffer_ << "\n";
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::cerr << "[FATAL " << file << ":" << line << "] check failed: " << expr;
  if (!message.empty()) std::cerr << " — " << message;
  std::cerr << "\n";
  std::abort();
}

}  // namespace internal
}  // namespace dynvote
