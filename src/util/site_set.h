// SiteSet: a small, value-semantic set of site identifiers backed by a
// 64-bit mask. Partition sets, reachable sets and quorum sets in the voting
// protocols are all SiteSets; the lexicographic tie-break of the paper maps
// onto Max()/Min() of the mask.

#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <ostream>
#include <string>

namespace dynvote {

/// Identifier of a site holding a physical copy. Sites are numbered from 0;
/// the paper numbers its machines 1..8, which examples map to ids 0..7.
using SiteId = int;

/// Maximum number of distinct sites a SiteSet can hold.
inline constexpr int kMaxSites = 64;

/// A set of sites, stored as a bitmask. All operations are O(1) except
/// iteration, which is O(|set|).
///
/// The paper orders sites linearly to break ties ("suppose the sites are
/// ordered so that A > B > C"). We adopt the convention that *lower* ids
/// rank higher (site 0 is the maximum element), matching the paper's
/// example where site A — listed first — wins ties. RankMax() returns that
/// element.
class SiteSet {
 public:
  /// Constructs the empty set.
  constexpr SiteSet() = default;

  /// Constructs a set from an explicit list of site ids.
  constexpr SiteSet(std::initializer_list<SiteId> sites) {
    for (SiteId s : sites) Add(s);
  }

  /// Returns the set {0, 1, ..., n-1}. Clamped: n <= 0 gives the empty
  /// set (a negative shift would be undefined behaviour), n >= kMaxSites
  /// gives every site.
  static constexpr SiteSet FirstN(int n) {
    SiteSet set;
    if (n <= 0) return set;
    set.mask_ = (n >= kMaxSites) ? ~std::uint64_t{0}
                                 : ((std::uint64_t{1} << n) - 1);
    return set;
  }

  /// Builds a set directly from a bitmask.
  static constexpr SiteSet FromMask(std::uint64_t mask) {
    SiteSet set;
    set.mask_ = mask;
    return set;
  }

  constexpr std::uint64_t mask() const { return mask_; }
  constexpr bool Empty() const { return mask_ == 0; }
  constexpr int Size() const { return std::popcount(mask_); }

  constexpr bool Contains(SiteId site) const {
    return Valid(site) && (mask_ & Bit(site)) != 0;
  }

  constexpr void Add(SiteId site) {
    if (Valid(site)) mask_ |= Bit(site);
  }
  constexpr void Remove(SiteId site) {
    if (Valid(site)) mask_ &= ~Bit(site);
  }

  /// Set algebra. All return new sets.
  constexpr SiteSet Union(SiteSet other) const {
    return FromMask(mask_ | other.mask_);
  }
  constexpr SiteSet Intersect(SiteSet other) const {
    return FromMask(mask_ & other.mask_);
  }
  constexpr SiteSet Minus(SiteSet other) const {
    return FromMask(mask_ & ~other.mask_);
  }
  constexpr bool IsSubsetOf(SiteSet other) const {
    return (mask_ & ~other.mask_) == 0;
  }
  constexpr bool Intersects(SiteSet other) const {
    return (mask_ & other.mask_) != 0;
  }

  /// The highest-ranking member under the paper's linear ordering
  /// (lowest id). Must not be called on the empty set.
  constexpr SiteId RankMax() const { return std::countr_zero(mask_); }

  /// The lowest-ranking member (highest id). Must not be called on the
  /// empty set.
  constexpr SiteId RankMin() const {
    return kMaxSites - 1 - std::countl_zero(mask_);
  }

  friend constexpr bool operator==(SiteSet a, SiteSet b) {
    return a.mask_ == b.mask_;
  }

  /// Iterates member ids in increasing order.
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = SiteId;
    using difference_type = std::ptrdiff_t;
    using pointer = const SiteId*;
    using reference = SiteId;

    constexpr Iterator() = default;
    explicit constexpr Iterator(std::uint64_t rest) : rest_(rest) {}

    constexpr SiteId operator*() const { return std::countr_zero(rest_); }
    constexpr Iterator& operator++() {
      rest_ &= rest_ - 1;  // clear lowest set bit
      return *this;
    }
    constexpr Iterator operator++(int) {
      Iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend constexpr bool operator==(Iterator a, Iterator b) {
      return a.rest_ == b.rest_;
    }

   private:
    std::uint64_t rest_ = 0;
  };

  constexpr Iterator begin() const { return Iterator(mask_); }
  constexpr Iterator end() const { return Iterator(0); }

  /// "{0, 2, 5}" — member ids in increasing order.
  std::string ToString() const;

 private:
  static constexpr bool Valid(SiteId site) {
    return site >= 0 && site < kMaxSites;
  }
  static constexpr std::uint64_t Bit(SiteId site) {
    return std::uint64_t{1} << site;
  }

  std::uint64_t mask_ = 0;
};

std::ostream& operator<<(std::ostream& os, SiteSet set);

}  // namespace dynvote
