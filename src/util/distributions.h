// Random-variate distributions used by the failure / repair / workload
// models. The paper (Section 4) models time-to-failure as exponential,
// software restarts as constants, and hardware repair as a constant service
// part plus an exponentially distributed repair part.

#pragma once

#include <memory>
#include <string>

#include "util/result.h"
#include "util/rng.h"

namespace dynvote {

/// A nonnegative random variate generator.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample using the given generator.
  virtual double Sample(Rng* rng) const = 0;

  /// Expected value of the distribution.
  virtual double Mean() const = 0;

  /// Human-readable description, e.g. "Exp(mean=36.5)".
  virtual std::string ToString() const = 0;
};

/// Degenerate distribution: always `value`.
class ConstantDistribution final : public Distribution {
 public:
  /// Creates the distribution; `value` must be >= 0.
  static Result<std::unique_ptr<Distribution>> Make(double value);

  double Sample(Rng* rng) const override;
  double Mean() const override { return value_; }
  std::string ToString() const override;

 private:
  explicit ConstantDistribution(double value) : value_(value) {}
  double value_;
};

/// Exponential distribution with the given mean.
class ExponentialDistribution final : public Distribution {
 public:
  /// Creates the distribution; `mean` must be > 0.
  static Result<std::unique_ptr<Distribution>> Make(double mean);

  double Sample(Rng* rng) const override;
  double Mean() const override { return mean_; }
  std::string ToString() const override;

 private:
  explicit ExponentialDistribution(double mean) : mean_(mean) {}
  double mean_;
};

/// Constant offset plus an exponential part: the paper's hardware-repair
/// model ("a constant term representing the minimum service time plus an
/// exponentially distributed term representing the actual repair process").
class ShiftedExponentialDistribution final : public Distribution {
 public:
  /// Creates the distribution; `offset` >= 0 and `exp_mean` >= 0. A zero
  /// `exp_mean` degenerates to a constant.
  static Result<std::unique_ptr<Distribution>> Make(double offset,
                                                    double exp_mean);

  double Sample(Rng* rng) const override;
  double Mean() const override { return offset_ + exp_mean_; }
  std::string ToString() const override;

 private:
  ShiftedExponentialDistribution(double offset, double exp_mean)
      : offset_(offset), exp_mean_(exp_mean) {}
  double offset_;
  double exp_mean_;
};

/// Two-point mixture: with probability `p_first` sample from `first`,
/// otherwise from `second`. Models the paper's hardware-vs-software repair
/// split (Table 1's "Hardware Failures (%)" column).
class MixtureDistribution final : public Distribution {
 public:
  /// Creates the mixture; `p_first` must lie in [0, 1] and both components
  /// must be non-null.
  static Result<std::unique_ptr<Distribution>> Make(
      double p_first, std::unique_ptr<Distribution> first,
      std::unique_ptr<Distribution> second);

  double Sample(Rng* rng) const override;
  double Mean() const override;
  std::string ToString() const override;

 private:
  MixtureDistribution(double p_first, std::unique_ptr<Distribution> first,
                      std::unique_ptr<Distribution> second)
      : p_first_(p_first),
        first_(std::move(first)),
        second_(std::move(second)) {}
  double p_first_;
  std::unique_ptr<Distribution> first_;
  std::unique_ptr<Distribution> second_;
};

}  // namespace dynvote
