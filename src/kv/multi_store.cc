#include "kv/multi_store.h"

#include "core/registry.h"

namespace dynvote {

Result<std::unique_ptr<MultiKvStore>> MultiKvStore::Make(
    std::shared_ptr<const Topology> topology, std::string default_protocol,
    SiteSet default_placement) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  // Validate the defaults eagerly by building (and discarding) one
  // instance.
  auto probe = MakeProtocolByName(default_protocol, topology,
                                  default_placement);
  if (!probe.ok()) return probe.status();
  return std::unique_ptr<MultiKvStore>(new MultiKvStore(
      std::move(topology), std::move(default_protocol),
      default_placement));
}

Status MultiKvStore::DeclareKey(const std::string& key, SiteSet placement,
                                const std::string& protocol) {
  if (objects_.count(key) != 0) {
    return Status::InvalidArgument("key '" + key + "' already exists");
  }
  auto p = MakeProtocolByName(protocol.empty() ? default_protocol_
                                               : protocol,
                              topology_, placement);
  if (!p.ok()) return p.status();
  auto store = ReplicatedKvStore::Make(p.MoveValue());
  if (!store.ok()) return store.status();
  objects_[key] = store.MoveValue();
  return Status::OK();
}

Result<ReplicatedKvStore*> MultiKvStore::ObjectFor(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    DYNVOTE_RETURN_NOT_OK(DeclareKey(key, default_placement_));
    it = objects_.find(key);
  }
  return it->second.get();
}

Status MultiKvStore::Put(const NetworkState& net, SiteId origin,
                         const std::string& key, std::string value) {
  ReplicatedKvStore* object;
  DYNVOTE_ASSIGN_OR_RETURN(object, ObjectFor(key));
  return object->Put(net, origin, key, std::move(value));
}

Result<std::string> MultiKvStore::Get(const NetworkState& net,
                                      SiteId origin,
                                      const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no object for key '" + key + "'");
  }
  return it->second->Get(net, origin, key);
}

Status MultiKvStore::Delete(const NetworkState& net, SiteId origin,
                            const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no object for key '" + key + "'");
  }
  return it->second->Delete(net, origin, key);
}

void MultiKvStore::OnNetworkEvent(const NetworkState& net) {
  for (auto& [key, object] : objects_) {
    object->protocol()->OnNetworkEvent(net);
  }
}

Result<bool> MultiKvStore::IsKeyAvailable(const NetworkState& net,
                                          const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return Status::NotFound("no object for key '" + key + "'");
  }
  return it->second->protocol()->IsAvailable(net);
}

std::uint64_t MultiKvStore::TotalMessages() const {
  std::uint64_t total = 0;
  for (const auto& [key, object] : objects_) {
    total += object->protocol()->counter()->Total();
  }
  return total;
}

const ConsistencyProtocol* MultiKvStore::protocol_of(
    const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return nullptr;
  const ReplicatedKvStore& object = *it->second;
  return &object.protocol();
}

}  // namespace dynvote
