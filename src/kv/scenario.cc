#include "kv/scenario.h"

#include <sstream>

namespace dynvote {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::string cleaned = line.substr(0, line.find('#'));
  std::istringstream ss(cleaned);
  std::vector<std::string> tokens;
  std::string token;
  while (ss >> token) tokens.push_back(token);
  return tokens;
}

Status ParseError(int line, const std::string& message) {
  return Status::InvalidArgument("scenario line " + std::to_string(line) +
                                 ": " + message);
}

Result<ScenarioStep::Expect> ParseExpectWord(int line,
                                             const std::string& word) {
  if (word == "ok") return ScenarioStep::Expect::kOk;
  if (word == "denied") return ScenarioStep::Expect::kDenied;
  if (word == "missing") return ScenarioStep::Expect::kMissing;
  return ParseError(line, "expected 'ok', 'denied' or 'missing', got '" +
                              word + "'");
}

}  // namespace

Result<SiteId> Scenario::SiteByName(const std::string& name) const {
  return topology_->FindSite(name);
}

Result<RepeaterId> Scenario::RepeaterByName(const std::string& name) const {
  for (const BridgeInfo& bridge : topology_->bridges()) {
    if (!bridge.gateway_site.has_value() && bridge.name == name) {
      return bridge.repeater;
    }
  }
  return Status::NotFound("no repeater named '" + name + "'");
}

Result<Scenario> Scenario::Parse(std::shared_ptr<const Topology> topology,
                                 const std::string& text) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  Scenario scenario(topology);

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;

    ScenarioStep step;
    step.line = line_number;
    const std::string& command = tokens[0];

    auto need = [&](std::size_t n) -> Status {
      if (tokens.size() < n) {
        return ParseError(line_number, "'" + command +
                                           "' needs more arguments");
      }
      return Status::OK();
    };
    auto check_site = [&](const std::string& name) -> Status {
      auto site = scenario.SiteByName(name);
      if (!site.ok()) return ParseError(line_number, site.status().message());
      return Status::OK();
    };

    if (command == "put" || command == "delete") {
      DYNVOTE_RETURN_NOT_OK(need(command == "put" ? 4u : 3u));
      step.kind = command == "put" ? ScenarioStep::Kind::kPut
                                   : ScenarioStep::Kind::kDelete;
      step.site = tokens[1];
      DYNVOTE_RETURN_NOT_OK(check_site(step.site));
      step.key = tokens[2];
      std::size_t next = 3;
      if (command == "put") {
        step.value = tokens[3];
        next = 4;
      }
      step.expect = ScenarioStep::Expect::kOk;  // default: must succeed
      if (tokens.size() > next) {
        if (tokens[next] != "expect" || tokens.size() < next + 2) {
          return ParseError(line_number, "trailing tokens; use 'expect'");
        }
        DYNVOTE_ASSIGN_OR_RETURN(
            step.expect, ParseExpectWord(line_number, tokens[next + 1]));
        if (step.expect == ScenarioStep::Expect::kMissing) {
          return ParseError(line_number, "'missing' only applies to get");
        }
      }
    } else if (command == "get") {
      DYNVOTE_RETURN_NOT_OK(need(5));
      step.kind = ScenarioStep::Kind::kGet;
      step.site = tokens[1];
      DYNVOTE_RETURN_NOT_OK(check_site(step.site));
      step.key = tokens[2];
      if (tokens[3] != "expect") {
        return ParseError(line_number, "get needs 'expect <outcome>'");
      }
      const std::string& outcome = tokens[4];
      if (outcome == "missing") {
        step.expect = ScenarioStep::Expect::kMissing;
      } else if (outcome == "denied") {
        step.expect = ScenarioStep::Expect::kDenied;
      } else {
        step.expect = ScenarioStep::Expect::kValue;
        step.value = outcome;
      }
    } else if (command == "recover") {
      DYNVOTE_RETURN_NOT_OK(need(2));
      step.kind = ScenarioStep::Kind::kRecover;
      step.site = tokens[1];
      DYNVOTE_RETURN_NOT_OK(check_site(step.site));
      step.expect = ScenarioStep::Expect::kNone;
      if (tokens.size() >= 4 && tokens[2] == "expect") {
        DYNVOTE_ASSIGN_OR_RETURN(step.expect,
                                 ParseExpectWord(line_number, tokens[3]));
      }
    } else if (command == "kill" || command == "restart") {
      DYNVOTE_RETURN_NOT_OK(need(2));
      step.kind = command == "kill" ? ScenarioStep::Kind::kKillSite
                                    : ScenarioStep::Kind::kRestartSite;
      step.site = tokens[1];
      DYNVOTE_RETURN_NOT_OK(check_site(step.site));
    } else if (command == "kill-repeater" ||
               command == "restart-repeater") {
      DYNVOTE_RETURN_NOT_OK(need(2));
      step.kind = command == "kill-repeater"
                      ? ScenarioStep::Kind::kKillRepeater
                      : ScenarioStep::Kind::kRestartRepeater;
      step.site = tokens[1];
      auto rep = scenario.RepeaterByName(step.site);
      if (!rep.ok()) return ParseError(line_number, rep.status().message());
    } else if (command == "expect-available") {
      DYNVOTE_RETURN_NOT_OK(need(2));
      step.kind = ScenarioStep::Kind::kExpectAvailable;
      if (tokens[1] != "yes" && tokens[1] != "no") {
        return ParseError(line_number, "expect-available takes yes|no");
      }
      step.available = tokens[1] == "yes";
    } else {
      return ParseError(line_number, "unknown command '" + command + "'");
    }
    scenario.steps_.push_back(std::move(step));
  }
  return scenario;
}

Status Scenario::Run(KvCluster* cluster, std::string* transcript) const {
  if (cluster == nullptr) {
    return Status::InvalidArgument("cluster must not be null");
  }
  std::ostringstream log;
  auto fail = [&](const ScenarioStep& step, const std::string& message) {
    if (transcript != nullptr) *transcript = log.str();
    return Status::Internal("scenario line " + std::to_string(step.line) +
                            ": " + message);
  };
  auto check_op = [&](const ScenarioStep& step,
                      const Status& st) -> Status {
    log << "  -> " << st << "\n";
    switch (step.expect) {
      case ScenarioStep::Expect::kOk:
        if (!st.ok()) return fail(step, "expected OK, got " + st.ToString());
        break;
      case ScenarioStep::Expect::kDenied:
        if (!st.IsNoQuorum() && !st.IsUnavailable()) {
          return fail(step, "expected a denial, got " + st.ToString());
        }
        break;
      case ScenarioStep::Expect::kNone:
        break;
      default:
        return fail(step, "internal: bad expectation");
    }
    return Status::OK();
  };

  for (const ScenarioStep& step : steps_) {
    switch (step.kind) {
      case ScenarioStep::Kind::kPut: {
        log << "put " << step.site << " " << step.key << "=" << step.value
            << "\n";
        SiteId site = *SiteByName(step.site);
        DYNVOTE_RETURN_NOT_OK(
            check_op(step, cluster->Put(site, step.key, step.value)));
        break;
      }
      case ScenarioStep::Kind::kDelete: {
        log << "delete " << step.site << " " << step.key << "\n";
        SiteId site = *SiteByName(step.site);
        DYNVOTE_RETURN_NOT_OK(
            check_op(step, cluster->Delete(site, step.key)));
        break;
      }
      case ScenarioStep::Kind::kGet: {
        log << "get " << step.site << " " << step.key << "\n";
        SiteId site = *SiteByName(step.site);
        auto got = cluster->Get(site, step.key);
        log << "  -> " << (got.ok() ? *got : got.status().ToString())
            << "\n";
        switch (step.expect) {
          case ScenarioStep::Expect::kValue:
            if (!got.ok()) {
              return fail(step, "expected '" + step.value + "', got " +
                                    got.status().ToString());
            }
            if (*got != step.value) {
              return fail(step, "expected '" + step.value + "', got '" +
                                    *got + "'");
            }
            break;
          case ScenarioStep::Expect::kMissing:
            if (!got.status().IsNotFound()) {
              return fail(step, "expected missing, got " +
                                    (got.ok() ? "'" + *got + "'"
                                              : got.status().ToString()));
            }
            break;
          case ScenarioStep::Expect::kDenied:
            if (!got.status().IsNoQuorum() &&
                !got.status().IsUnavailable()) {
              return fail(step, "expected a denial, got " +
                                    (got.ok() ? "'" + *got + "'"
                                              : got.status().ToString()));
            }
            break;
          default:
            return fail(step, "internal: bad get expectation");
        }
        break;
      }
      case ScenarioStep::Kind::kRecover: {
        log << "recover " << step.site << "\n";
        SiteId site = *SiteByName(step.site);
        DYNVOTE_RETURN_NOT_OK(check_op(step, cluster->TryRecover(site)));
        break;
      }
      case ScenarioStep::Kind::kKillSite: {
        log << "kill " << step.site << "\n";
        cluster->KillSite(*SiteByName(step.site));
        break;
      }
      case ScenarioStep::Kind::kRestartSite: {
        log << "restart " << step.site << "\n";
        cluster->RestartSite(*SiteByName(step.site));
        break;
      }
      case ScenarioStep::Kind::kKillRepeater: {
        log << "kill-repeater " << step.site << "\n";
        cluster->KillRepeater(*RepeaterByName(step.site));
        break;
      }
      case ScenarioStep::Kind::kRestartRepeater: {
        log << "restart-repeater " << step.site << "\n";
        cluster->RestartRepeater(*RepeaterByName(step.site));
        break;
      }
      case ScenarioStep::Kind::kExpectAvailable: {
        bool available = cluster->IsAvailable();
        log << "expect-available " << (step.available ? "yes" : "no")
            << " (actual: " << (available ? "yes" : "no") << ")\n";
        if (available != step.available) {
          return fail(step, std::string("expected file to be ") +
                                (step.available ? "available"
                                                : "unavailable"));
        }
        break;
      }
    }
  }
  if (transcript != nullptr) *transcript = log.str();
  return Status::OK();
}

}  // namespace dynvote
