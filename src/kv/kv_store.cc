#include "kv/kv_store.h"

#include "util/logging.h"

namespace dynvote {

Result<std::unique_ptr<ReplicatedKvStore>> ReplicatedKvStore::Make(
    std::unique_ptr<ConsistencyProtocol> protocol) {
  if (protocol == nullptr) {
    return Status::InvalidArgument("protocol must not be null");
  }
  return std::unique_ptr<ReplicatedKvStore>(
      new ReplicatedKvStore(std::move(protocol)));
}

ReplicatedKvStore::ReplicatedKvStore(
    std::unique_ptr<ConsistencyProtocol> protocol)
    : protocol_(std::move(protocol)) {
  // Witnesses vote but never store contents: no replica map for them.
  for (SiteId s : protocol_->data_sites()) replicas_[s] = KvMap();
  protocol_->set_commit_hook(
      [this](const CommitInfo& info) { OnCommit(info); });
}

const KvMap& ReplicatedKvStore::ReplicaContents(SiteId site) const {
  auto it = replicas_.find(site);
  DYNVOTE_CHECK_MSG(it != replicas_.end(),
                    "site holds no data replica (witness or non-member)");
  return it->second;
}

void ReplicatedKvStore::OnCommit(const CommitInfo& info) {
  switch (info.kind) {
    case CommitInfo::Kind::kRead:
      last_read_source_ = info.source;
      break;
    case CommitInfo::Kind::kWrite: {
      DYNVOTE_CHECK_MSG(replicas_.count(info.source) == 1,
                        "write source holds no replica");
      // Whole-object read-modify-write: start from the current contents,
      // apply the staged mutation, install at every participant.
      KvMap next = replicas_[info.source];
      if (pending_write_.has_value()) {
        if (pending_write_->value.has_value()) {
          next[pending_write_->key] = *pending_write_->value;
        } else {
          next.erase(pending_write_->key);
        }
      }
      for (SiteId s : info.participants) {
        if (replicas_.count(s) == 1) replicas_[s] = next;
      }
      break;
    }
    case CommitInfo::Kind::kRecovery: {
      if (replicas_.count(info.source) == 0) break;  // witness source
      const KvMap& from = replicas_[info.source];
      for (SiteId s : info.participants) {
        if (replicas_.count(s) == 1) replicas_[s] = from;
      }
      break;
    }
  }
}

Status ReplicatedKvStore::Put(const NetworkState& net, SiteId origin,
                              const std::string& key, std::string value) {
  pending_write_ = PendingWrite{key, std::move(value)};
  Status st = protocol_->Write(net, origin);
  pending_write_.reset();
  return st;
}

Status ReplicatedKvStore::Delete(const NetworkState& net, SiteId origin,
                                 const std::string& key) {
  pending_write_ = PendingWrite{key, std::nullopt};
  Status st = protocol_->Write(net, origin);
  pending_write_.reset();
  return st;
}

Result<std::string> ReplicatedKvStore::Get(const NetworkState& net,
                                           SiteId origin,
                                           const std::string& key) {
  last_read_source_ = -1;
  DYNVOTE_RETURN_NOT_OK(protocol_->Read(net, origin));
  DYNVOTE_CHECK_MSG(last_read_source_ >= 0,
                    "granted read reported no source replica");
  const KvMap& data = replicas_[last_read_source_];
  auto it = data.find(key);
  if (it == data.end()) {
    return Status::NotFound("no value for key '" + key + "'");
  }
  return it->second;
}

Result<std::size_t> ReplicatedKvStore::Size(const NetworkState& net,
                                            SiteId origin) {
  last_read_source_ = -1;
  DYNVOTE_RETURN_NOT_OK(protocol_->Read(net, origin));
  DYNVOTE_CHECK_MSG(last_read_source_ >= 0,
                    "granted read reported no source replica");
  return replicas_[last_read_source_].size();
}

}  // namespace dynvote
