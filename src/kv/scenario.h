// A tiny line-oriented scenario language for driving a KvCluster through
// fault schedules with inline expectations — used by tests, by the
// scenario_runner example, and handy for reproducing availability
// anomalies found in long simulations as deterministic scripts.
//
//   # three copies; B and C fail; A carries on via the tie-break
//   put A color blue
//   kill C
//   put A color green
//   kill B
//   get A color expect green
//   restart B
//   recover B expect denied       # B alone cannot reach the majority
//   restart C
//   recover C expect ok
//   get C color expect green
//   expect-available yes
//
// Commands (sites by name, as declared in the Topology):
//   put <site> <key> <value>            [expect ok|denied]
//   get <site> <key> expect <value>|missing|denied
//   delete <site> <key>                 [expect ok|denied]
//   recover <site>                      [expect ok|denied]
//   kill <site> | restart <site>
//   kill-repeater <name> | restart-repeater <name>
//   expect-available yes|no
// Blank lines and text after '#' are ignored.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kv/cluster.h"
#include "util/result.h"

namespace dynvote {

/// One parsed scenario step.
struct ScenarioStep {
  enum class Kind {
    kPut,
    kGet,
    kDelete,
    kRecover,
    kKillSite,
    kRestartSite,
    kKillRepeater,
    kRestartRepeater,
    kExpectAvailable,
  };
  /// Expected outcome of an operation step.
  enum class Expect { kNone, kOk, kDenied, kValue, kMissing };

  Kind kind = Kind::kPut;
  int line = 0;  // 1-based source line, for error messages
  std::string site;        // site or repeater name
  std::string key;
  std::string value;       // put value, or expected get value
  Expect expect = Expect::kNone;
  bool available = false;  // for kExpectAvailable
};

/// A parsed scenario, bound to a topology (site names resolved eagerly).
class Scenario {
 public:
  /// Parses `text`. Fails with the offending line number on syntax
  /// errors or unknown site/repeater names.
  static Result<Scenario> Parse(std::shared_ptr<const Topology> topology,
                                const std::string& text);

  const std::vector<ScenarioStep>& steps() const { return steps_; }

  /// Runs every step against `cluster` (which must use the same
  /// topology). Returns OK if all expectations held; otherwise an
  /// Internal status naming the first failed step. `transcript`, if
  /// non-null, receives one line per executed step.
  Status Run(KvCluster* cluster, std::string* transcript = nullptr) const;

 private:
  explicit Scenario(std::shared_ptr<const Topology> topology)
      : topology_(std::move(topology)) {}

  Result<SiteId> SiteByName(const std::string& name) const;
  Result<RepeaterId> RepeaterByName(const std::string& name) const;

  std::shared_ptr<const Topology> topology_;
  std::vector<ScenarioStep> steps_;
};

}  // namespace dynvote
