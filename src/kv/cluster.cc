#include "kv/cluster.h"

#include "core/registry.h"

namespace dynvote {

Result<std::unique_ptr<KvCluster>> KvCluster::Make(
    std::shared_ptr<const Topology> topology, SiteSet placement,
    const std::string& protocol_name) {
  auto protocol = MakeProtocolByName(protocol_name, topology, placement);
  if (!protocol.ok()) return protocol.status();
  return Make(std::move(topology), protocol.MoveValue());
}

Result<std::unique_ptr<KvCluster>> KvCluster::Make(
    std::shared_ptr<const Topology> topology,
    std::unique_ptr<ConsistencyProtocol> protocol) {
  if (topology == nullptr) {
    return Status::InvalidArgument("topology must not be null");
  }
  if (protocol == nullptr) {
    return Status::InvalidArgument("protocol must not be null");
  }
  auto store = ReplicatedKvStore::Make(std::move(protocol));
  if (!store.ok()) return store.status();
  return std::unique_ptr<KvCluster>(
      new KvCluster(std::move(topology), store.MoveValue()));
}

KvCluster::KvCluster(std::shared_ptr<const Topology> topology,
                     std::unique_ptr<ReplicatedKvStore> store)
    : net_(std::move(topology)), store_(std::move(store)) {}

void KvCluster::KillSite(SiteId site) {
  net_.SetSiteUp(site, false);
  store_->protocol()->OnNetworkEvent(net_);
}

void KvCluster::RestartSite(SiteId site) {
  net_.SetSiteUp(site, true);
  store_->protocol()->OnNetworkEvent(net_);
}

void KvCluster::KillRepeater(RepeaterId repeater) {
  net_.SetRepeaterUp(repeater, false);
  store_->protocol()->OnNetworkEvent(net_);
}

void KvCluster::RestartRepeater(RepeaterId repeater) {
  net_.SetRepeaterUp(repeater, true);
  store_->protocol()->OnNetworkEvent(net_);
}

}  // namespace dynvote
