// A self-contained replicated-KV cluster with fault injection: owns the
// network state, keeps the protocol informed of membership changes, and
// exposes kill/restart/partition controls for examples and tests.

#pragma once

#include <memory>
#include <string>

#include "kv/kv_store.h"
#include "net/network_state.h"
#include "net/topology.h"
#include "util/result.h"

namespace dynvote {

/// Replicated KV store + network + fault injection in one object.
class KvCluster {
 public:
  /// Builds a cluster running protocol `protocol_name` (a registry name:
  /// "MCV", "LDV", "ODV", ...) with copies at `placement`.
  static Result<std::unique_ptr<KvCluster>> Make(
      std::shared_ptr<const Topology> topology, SiteSet placement,
      const std::string& protocol_name);

  /// Builds a cluster around an existing protocol.
  static Result<std::unique_ptr<KvCluster>> Make(
      std::shared_ptr<const Topology> topology,
      std::unique_ptr<ConsistencyProtocol> protocol);

  KvCluster(const KvCluster&) = delete;
  KvCluster& operator=(const KvCluster&) = delete;

  /// --- data plane ------------------------------------------------------
  Status Put(SiteId origin, const std::string& key, std::string value) {
    return store_->Put(net_, origin, key, std::move(value));
  }
  Result<std::string> Get(SiteId origin, const std::string& key) {
    return store_->Get(net_, origin, key);
  }
  Status Delete(SiteId origin, const std::string& key) {
    return store_->Delete(net_, origin, key);
  }

  /// --- fault injection -------------------------------------------------
  /// Crashes a site (fail-stop, as the paper assumes).
  void KillSite(SiteId site);
  /// Restarts a site. Instantaneous-information protocols reintegrate it
  /// immediately; for optimistic ones call TryRecover or let the next
  /// granted access reintegrate it.
  void RestartSite(SiteId site);
  /// Fails / repairs a standalone repeater (partitions the network).
  void KillRepeater(RepeaterId repeater);
  void RestartRepeater(RepeaterId repeater);

  /// Explicit recovery attempt for a live site (Figure 3 / 7).
  Status TryRecover(SiteId site) {
    return store_->protocol()->Recover(net_, site);
  }

  /// --- observation -----------------------------------------------------
  const NetworkState& net() const { return net_; }
  ReplicatedKvStore& store() { return *store_; }
  const ReplicatedKvStore& store() const { return *store_; }
  const ConsistencyProtocol& protocol() const {
    return *store_->protocol();
  }

  /// True iff some live site could currently be granted an access.
  bool IsAvailable() const {
    return store_->protocol()->IsAvailable(net_);
  }

 private:
  KvCluster(std::shared_ptr<const Topology> topology,
            std::unique_ptr<ReplicatedKvStore> store);

  NetworkState net_;
  std::unique_ptr<ReplicatedKvStore> store_;
};

}  // namespace dynvote
