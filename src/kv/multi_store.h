// A multi-object store: one consistency protocol instance *per key*, the
// way the paper's system (Gemini) manages many independent replicated
// files. Each key may have its own placement; quorums are per object, so
// some keys can remain writable while others are blocked — and the
// aggregate connection-vector cost of the instantaneous protocols scales
// with the number of objects (the practicality point of [BMP87] that
// motivates optimism).

#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/protocol.h"
#include "kv/kv_store.h"
#include "net/network_state.h"
#include "net/topology.h"
#include "util/result.h"

namespace dynvote {

/// Many replicated objects, each under its own protocol instance.
class MultiKvStore {
 public:
  /// `default_protocol` (a registry name) and `default_placement` govern
  /// keys created without an explicit placement.
  static Result<std::unique_ptr<MultiKvStore>> Make(
      std::shared_ptr<const Topology> topology,
      std::string default_protocol, SiteSet default_placement);

  MultiKvStore(const MultiKvStore&) = delete;
  MultiKvStore& operator=(const MultiKvStore&) = delete;

  /// Declares `key` with a non-default placement (and optionally a
  /// different protocol). Must be called before the key's first Put;
  /// fails if the key already exists.
  Status DeclareKey(const std::string& key, SiteSet placement,
                    const std::string& protocol = "");

  /// Writes through the key's own quorum (creating the object with the
  /// default placement on first use).
  Status Put(const NetworkState& net, SiteId origin, const std::string& key,
             std::string value);

  /// Reads through the key's own quorum.
  Result<std::string> Get(const NetworkState& net, SiteId origin,
                          const std::string& key);

  /// Deletes the value (the object and its quorum state remain).
  Status Delete(const NetworkState& net, SiteId origin,
                const std::string& key);

  /// Forwards a network event to every object's protocol.
  void OnNetworkEvent(const NetworkState& net);

  /// Availability of one key's object at this instant; NotFound for
  /// undeclared keys.
  Result<bool> IsKeyAvailable(const NetworkState& net,
                              const std::string& key) const;

  /// Number of distinct objects (declared or auto-created).
  std::size_t num_objects() const { return objects_.size(); }

  /// Total messages across all objects' protocols.
  std::uint64_t TotalMessages() const;

  /// The per-key protocol, for inspection; nullptr if undeclared.
  const ConsistencyProtocol* protocol_of(const std::string& key) const;

 private:
  MultiKvStore(std::shared_ptr<const Topology> topology,
               std::string default_protocol, SiteSet default_placement)
      : topology_(std::move(topology)),
        default_protocol_(std::move(default_protocol)),
        default_placement_(default_placement) {}

  /// Finds or lazily creates the object for `key`.
  Result<ReplicatedKvStore*> ObjectFor(const std::string& key);

  std::shared_ptr<const Topology> topology_;
  std::string default_protocol_;
  SiteSet default_placement_;
  std::map<std::string, std::unique_ptr<ReplicatedKvStore>> objects_;
};

}  // namespace dynvote
