// A replicated key-value store whose consistency is controlled by any
// ConsistencyProtocol from src/core. Each site in the placement holds a
// full copy of the map; the paper's model replicates whole files, so a
// write is a whole-object read-modify-write applied at every participant
// the protocol commits to, and recovery copies the whole map.
//
// This layer demonstrates that the voting protocols do real work: under
// fault injection, a successful Get always observes the latest successful
// Put (one-copy serialisability) for every partition-safe protocol.

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/protocol.h"
#include "net/network_state.h"
#include "util/result.h"

namespace dynvote {

/// One replica's contents.
using KvMap = std::map<std::string, std::string>;

/// Replicated map on top of a consistency protocol.
class ReplicatedKvStore {
 public:
  /// Takes ownership of `protocol`; the store installs itself as the
  /// protocol's commit hook.
  static Result<std::unique_ptr<ReplicatedKvStore>> Make(
      std::unique_ptr<ConsistencyProtocol> protocol);

  ReplicatedKvStore(const ReplicatedKvStore&) = delete;
  ReplicatedKvStore& operator=(const ReplicatedKvStore&) = delete;

  /// Writes `key` -> `value` through the protocol, issued at `origin`.
  /// Returns NoQuorum when origin is outside the majority partition.
  Status Put(const NetworkState& net, SiteId origin, const std::string& key,
             std::string value);

  /// Removes `key` through the protocol (a write).
  Status Delete(const NetworkState& net, SiteId origin,
                const std::string& key);

  /// Reads `key` through the protocol. NotFound if the key does not
  /// exist; NoQuorum if origin is outside the majority partition.
  Result<std::string> Get(const NetworkState& net, SiteId origin,
                          const std::string& key);

  /// The underlying protocol (for fault-injection notifications and
  /// inspection).
  ConsistencyProtocol* protocol() { return protocol_.get(); }
  const ConsistencyProtocol& protocol() const { return *protocol_; }

  /// Raw contents of one replica — test/debug access; production readers
  /// must go through Get().
  const KvMap& ReplicaContents(SiteId site) const;

  /// Number of keys a Get at `origin` would see, or NoQuorum.
  Result<std::size_t> Size(const NetworkState& net, SiteId origin);

 private:
  explicit ReplicatedKvStore(std::unique_ptr<ConsistencyProtocol> protocol);

  /// Commit hook: moves map contents where the protocol moved currency.
  void OnCommit(const CommitInfo& info);

  std::unique_ptr<ConsistencyProtocol> protocol_;
  std::map<SiteId, KvMap> replicas_;

  /// Mutation staged by Put/Delete, applied by the kWrite hook.
  struct PendingWrite {
    std::string key;
    std::optional<std::string> value;  // nullopt = delete
  };
  std::optional<PendingWrite> pending_write_;
  /// Source replica of the last granted read, set by the kRead hook.
  SiteId last_read_source_ = -1;
};

}  // namespace dynvote
